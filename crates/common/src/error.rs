//! The engine-wide error type.

use std::fmt;
use std::io;

use crate::ids::{PageId, Tid};

/// All fallible engine operations return this error.
#[derive(Debug)]
pub enum Error {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// On-disk bytes failed validation (bad magic, CRC mismatch,
    /// impossible offsets). Indicates corruption or a version mismatch.
    Corruption(String),
    /// A page does not have the type the caller expected.
    WrongPageType {
        page: PageId,
        expected: &'static str,
    },
    /// A record/key was not found where it was required to exist.
    KeyNotFound,
    /// An insert collided with an existing live record for the same key.
    DuplicateKey,
    /// The requested transaction is unknown or already finished.
    UnknownTransaction(Tid),
    /// The transaction was aborted by the engine (deadlock victim,
    /// first-committer-wins conflict, explicit rollback during commit).
    TransactionAborted { tid: Tid, reason: String },
    /// Two transactions deadlocked; this one was chosen as the victim.
    Deadlock(Tid),
    /// A write-write conflict under snapshot isolation
    /// (first-committer-wins).
    WriteConflict(Tid),
    /// A record (key + value + version tail) is too large to ever fit in a
    /// page.
    RecordTooLarge(usize),
    /// The target page has no room for the operation; the caller must
    /// split (or compact) and retry. Flow-control, not a failure.
    PageFull,
    /// Attempted to write through a read-only (AS OF) transaction.
    ReadOnlyTransaction,
    /// Catalog-level misuse: unknown table, duplicate table, querying
    /// history of a non-immortal table, etc.
    Catalog(String),
    /// SQL front-end parse or binding failure.
    Sql(String),
    /// Internal invariant violation: a bug in the engine.
    Internal(String),
}

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::Corruption(m) => write!(f, "corruption detected: {m}"),
            Error::WrongPageType { page, expected } => {
                write!(f, "page {page:?} is not a {expected} page")
            }
            Error::KeyNotFound => write!(f, "key not found"),
            Error::DuplicateKey => write!(f, "duplicate key"),
            Error::UnknownTransaction(tid) => write!(f, "unknown transaction {tid:?}"),
            Error::TransactionAborted { tid, reason } => {
                write!(f, "transaction {tid:?} aborted: {reason}")
            }
            Error::Deadlock(tid) => write!(f, "deadlock: transaction {tid:?} chosen as victim"),
            Error::WriteConflict(tid) => write!(
                f,
                "snapshot write-write conflict: transaction {tid:?} must abort (first committer wins)"
            ),
            Error::RecordTooLarge(n) => write!(f, "record of {n} bytes exceeds page capacity"),
            Error::PageFull => write!(f, "page full; split required"),
            Error::ReadOnlyTransaction => write!(f, "write attempted in a read-only transaction"),
            Error::Catalog(m) => write!(f, "catalog error: {m}"),
            Error::Sql(m) => write!(f, "SQL error: {m}"),
            Error::Internal(m) => write!(f, "internal invariant violated: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

impl Error {
    /// True if the error means the *transaction* is doomed but the engine
    /// itself is healthy (the caller should roll back and may retry).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            Error::Deadlock(_) | Error::WriteConflict(_) | Error::TransactionAborted { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::WriteConflict(Tid(7));
        assert!(e.to_string().contains("first committer wins"));
        let e = Error::WrongPageType {
            page: PageId(3),
            expected: "leaf",
        };
        assert!(e.to_string().contains("P3"));
    }

    #[test]
    fn transient_classification() {
        assert!(Error::Deadlock(Tid(1)).is_transient());
        assert!(Error::WriteConflict(Tid(1)).is_transient());
        assert!(!Error::KeyNotFound.is_transient());
        assert!(!Error::Corruption("x".into()).is_transient());
    }

    #[test]
    fn io_conversion_preserves_source() {
        let e: Error = io::Error::other("boom").into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
