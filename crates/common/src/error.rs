//! The engine-wide error type.

use std::fmt;
use std::io;

use crate::ids::{PageId, Tid};

/// Stable, coarse error classification carried across process boundaries.
///
/// The wire protocol maps engine errors to ERROR frames by this code —
/// never by matching `Display` strings — so clients can branch on it
/// (retry conflicts, report parse positions, back off on `Busy`).
/// Codes are a public interface: the `u8` values are part of the wire
/// format and must not be renumbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ErrorCode {
    /// SQL lexing/parsing/binding failure (client's statement is at fault).
    Parse = 1,
    /// Transaction-level conflict: deadlock victim, write-write conflict,
    /// engine-initiated abort, duplicate key. Roll back and retry.
    Conflict = 2,
    /// A required key/row/transaction was not found.
    NotFound = 3,
    /// The server is saturated (accept-queue shed, admission control).
    /// Transient by design: back off and reconnect.
    Busy = 4,
    /// On-disk bytes failed validation; data may be damaged.
    Corruption = 5,
    /// Underlying file or socket I/O failed.
    Io = 6,
    /// Catalog/schema misuse: unknown table, AS OF on a non-immortal
    /// table, over-large record, etc.
    Catalog = 7,
    /// Write attempted through a read-only (AS OF) transaction.
    ReadOnly = 8,
    /// Internal invariant violation: a bug in the engine.
    Internal = 9,
    /// Temporal-query misuse: reversed VERSIONS BETWEEN bounds, unknown
    /// snapshot name, snapshot already exists.
    Temporal = 10,
}

impl ErrorCode {
    /// Stable lowercase name (diagnostics, logs, JSON).
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::Conflict => "conflict",
            ErrorCode::NotFound => "not-found",
            ErrorCode::Busy => "busy",
            ErrorCode::Corruption => "corruption",
            ErrorCode::Io => "io",
            ErrorCode::Catalog => "catalog",
            ErrorCode::ReadOnly => "read-only",
            ErrorCode::Internal => "internal",
            ErrorCode::Temporal => "temporal",
        }
    }

    /// Inverse of the wire encoding; unknown bytes decode to `Internal`
    /// rather than failing (forward compatibility).
    pub fn from_u8(v: u8) -> ErrorCode {
        match v {
            1 => ErrorCode::Parse,
            2 => ErrorCode::Conflict,
            3 => ErrorCode::NotFound,
            4 => ErrorCode::Busy,
            5 => ErrorCode::Corruption,
            6 => ErrorCode::Io,
            7 => ErrorCode::Catalog,
            8 => ErrorCode::ReadOnly,
            10 => ErrorCode::Temporal,
            _ => ErrorCode::Internal,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// All fallible engine operations return this error.
#[derive(Debug)]
pub enum Error {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// On-disk bytes failed validation (bad magic, CRC mismatch,
    /// impossible offsets). Indicates corruption or a version mismatch.
    Corruption(String),
    /// A page does not have the type the caller expected.
    WrongPageType {
        page: PageId,
        expected: &'static str,
    },
    /// A record/key was not found where it was required to exist.
    KeyNotFound,
    /// An insert collided with an existing live record for the same key.
    DuplicateKey,
    /// The requested transaction is unknown or already finished.
    UnknownTransaction(Tid),
    /// The transaction was aborted by the engine (deadlock victim,
    /// first-committer-wins conflict, explicit rollback during commit).
    TransactionAborted { tid: Tid, reason: String },
    /// Two transactions deadlocked; this one was chosen as the victim.
    Deadlock(Tid),
    /// A write-write conflict under snapshot isolation
    /// (first-committer-wins).
    WriteConflict(Tid),
    /// A record (key + value + version tail) is too large to ever fit in a
    /// page.
    RecordTooLarge(usize),
    /// The target page has no room for the operation; the caller must
    /// split (or compact) and retry. Flow-control, not a failure.
    PageFull,
    /// Attempted to write through a read-only (AS OF) transaction.
    ReadOnlyTransaction,
    /// Attempted a write or DDL on a read replica; writes must go to the
    /// primary. Shares the `ReadOnly` wire code with
    /// [`Error::ReadOnlyTransaction`] so clients branch the same way.
    ReplicaReadOnly,
    /// Catalog-level misuse: unknown table, duplicate table, querying
    /// history of a non-immortal table, etc.
    Catalog(String),
    /// SQL front-end parse or binding failure.
    Sql(String),
    /// SQL parse failure with the byte offset of the offending token in
    /// the statement text (the wire protocol echoes it to clients).
    Parse { offset: usize, message: String },
    /// A named snapshot was referenced that does not exist.
    UnknownSnapshot(String),
    /// Temporal-query misuse: reversed bounds, duplicate snapshot name,
    /// and similar semantic failures of the temporal surface.
    Temporal(String),
    /// The server shed this connection/request under load (connection
    /// cap, accept-queue overflow, or in-flight request cap). Clients
    /// should back off — for at least `retry_after_ms` when the server
    /// supplied a hint — and retry.
    ServerBusy { retry_after_ms: Option<u32> },
    /// An error reported by a remote server over the wire protocol,
    /// reconstructed client-side from an ERROR frame.
    Remote {
        code: ErrorCode,
        /// Byte offset for `Parse`-coded errors, when the server knew it.
        offset: Option<u32>,
        message: String,
    },
    /// Internal invariant violation: a bug in the engine.
    Internal(String),
}

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::Corruption(m) => write!(f, "corruption detected: {m}"),
            Error::WrongPageType { page, expected } => {
                write!(f, "page {page:?} is not a {expected} page")
            }
            Error::KeyNotFound => write!(f, "key not found"),
            Error::DuplicateKey => write!(f, "duplicate key"),
            Error::UnknownTransaction(tid) => write!(f, "unknown transaction {tid:?}"),
            Error::TransactionAborted { tid, reason } => {
                write!(f, "transaction {tid:?} aborted: {reason}")
            }
            Error::Deadlock(tid) => write!(f, "deadlock: transaction {tid:?} chosen as victim"),
            Error::WriteConflict(tid) => write!(
                f,
                "snapshot write-write conflict: transaction {tid:?} must abort (first committer wins)"
            ),
            Error::RecordTooLarge(n) => write!(f, "record of {n} bytes exceeds page capacity"),
            Error::PageFull => write!(f, "page full; split required"),
            Error::ReadOnlyTransaction => write!(f, "write attempted in a read-only transaction"),
            Error::ReplicaReadOnly => {
                write!(f, "replica is read-only; route writes to the primary")
            }
            Error::Catalog(m) => write!(f, "catalog error: {m}"),
            Error::Sql(m) => write!(f, "SQL error: {m}"),
            Error::Parse { offset, message } => {
                write!(f, "SQL error: {message} (at byte {offset})")
            }
            Error::UnknownSnapshot(name) => write!(f, "unknown snapshot {name}"),
            Error::Temporal(m) => write!(f, "temporal error: {m}"),
            Error::ServerBusy { retry_after_ms } => match retry_after_ms {
                Some(ms) => write!(f, "server busy: shed under load, retry in {ms} ms"),
                None => write!(f, "server busy: connection shed, retry later"),
            },
            Error::Remote {
                code,
                offset,
                message,
            } => match offset {
                Some(o) => write!(f, "server error [{code}]: {message} (at byte {o})"),
                None => write!(f, "server error [{code}]: {message}"),
            },
            Error::Internal(m) => write!(f, "internal invariant violated: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

impl Error {
    /// True if the error means the *transaction* is doomed but the engine
    /// itself is healthy (the caller should roll back and may retry).
    pub fn is_transient(&self) -> bool {
        match self {
            Error::Deadlock(_) | Error::WriteConflict(_) | Error::TransactionAborted { .. } => true,
            // A remote conflict is the same doomed-but-retryable situation
            // observed through the wire protocol.
            Error::Remote { code, .. } => *code == ErrorCode::Conflict,
            _ => false,
        }
    }

    /// Stable classification of this error (what the wire protocol puts
    /// in ERROR frames). Every variant maps to exactly one code.
    pub fn code(&self) -> ErrorCode {
        match self {
            Error::Io(_) => ErrorCode::Io,
            Error::Corruption(_) | Error::WrongPageType { .. } => ErrorCode::Corruption,
            Error::KeyNotFound | Error::UnknownTransaction(_) => ErrorCode::NotFound,
            Error::DuplicateKey
            | Error::TransactionAborted { .. }
            | Error::Deadlock(_)
            | Error::WriteConflict(_) => ErrorCode::Conflict,
            // RecordTooLarge is the client handing us an impossible row;
            // PageFull is internal flow control and should never escape.
            Error::RecordTooLarge(_) | Error::Catalog(_) => ErrorCode::Catalog,
            Error::PageFull | Error::Internal(_) => ErrorCode::Internal,
            Error::ReadOnlyTransaction | Error::ReplicaReadOnly => ErrorCode::ReadOnly,
            Error::Sql(_) | Error::Parse { .. } => ErrorCode::Parse,
            Error::UnknownSnapshot(_) | Error::Temporal(_) => ErrorCode::Temporal,
            Error::ServerBusy { .. } => ErrorCode::Busy,
            Error::Remote { code, .. } => *code,
        }
    }

    /// Byte offset into the statement text for parse errors, if known.
    pub fn parse_offset(&self) -> Option<u32> {
        match self {
            Error::Parse { offset, .. } => Some(*offset as u32),
            Error::Remote { offset, .. } => *offset,
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::WriteConflict(Tid(7));
        assert!(e.to_string().contains("first committer wins"));
        let e = Error::WrongPageType {
            page: PageId(3),
            expected: "leaf",
        };
        assert!(e.to_string().contains("P3"));
    }

    #[test]
    fn transient_classification() {
        assert!(Error::Deadlock(Tid(1)).is_transient());
        assert!(Error::WriteConflict(Tid(1)).is_transient());
        assert!(!Error::KeyNotFound.is_transient());
        assert!(!Error::Corruption("x".into()).is_transient());
    }

    #[test]
    fn io_conversion_preserves_source() {
        let e: Error = io::Error::other("boom").into();
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn every_variant_has_a_stable_code() {
        assert_eq!(Error::Io(io::Error::other("x")).code(), ErrorCode::Io);
        assert_eq!(Error::Corruption("x".into()).code(), ErrorCode::Corruption);
        assert_eq!(Error::KeyNotFound.code(), ErrorCode::NotFound);
        assert_eq!(Error::DuplicateKey.code(), ErrorCode::Conflict);
        assert_eq!(Error::Deadlock(Tid(1)).code(), ErrorCode::Conflict);
        assert_eq!(Error::WriteConflict(Tid(1)).code(), ErrorCode::Conflict);
        assert_eq!(Error::Catalog("x".into()).code(), ErrorCode::Catalog);
        assert_eq!(Error::Sql("x".into()).code(), ErrorCode::Parse);
        assert_eq!(
            Error::Parse {
                offset: 3,
                message: "x".into()
            }
            .code(),
            ErrorCode::Parse
        );
        assert_eq!(
            Error::ServerBusy {
                retry_after_ms: None
            }
            .code(),
            ErrorCode::Busy
        );
        assert!(Error::ServerBusy {
            retry_after_ms: Some(25)
        }
        .to_string()
        .contains("25 ms"));
        assert_eq!(Error::ReadOnlyTransaction.code(), ErrorCode::ReadOnly);
        assert_eq!(Error::ReplicaReadOnly.code(), ErrorCode::ReadOnly);
        assert_eq!(Error::Internal("x".into()).code(), ErrorCode::Internal);
        assert_eq!(
            Error::UnknownSnapshot("s".into()).code(),
            ErrorCode::Temporal
        );
        assert_eq!(Error::Temporal("x".into()).code(), ErrorCode::Temporal);
    }

    #[test]
    fn code_roundtrips_through_wire_byte() {
        for code in [
            ErrorCode::Parse,
            ErrorCode::Conflict,
            ErrorCode::NotFound,
            ErrorCode::Busy,
            ErrorCode::Corruption,
            ErrorCode::Io,
            ErrorCode::Catalog,
            ErrorCode::ReadOnly,
            ErrorCode::Internal,
            ErrorCode::Temporal,
        ] {
            assert_eq!(ErrorCode::from_u8(code as u8), code);
        }
        // Unknown bytes degrade to Internal instead of failing.
        assert_eq!(ErrorCode::from_u8(255), ErrorCode::Internal);
    }

    #[test]
    fn parse_error_carries_offset() {
        let e = Error::Parse {
            offset: 17,
            message: "expected FROM".into(),
        };
        assert_eq!(e.parse_offset(), Some(17));
        assert!(e.to_string().contains("at byte 17"));
        // Remote conflicts are transient like their local counterparts.
        let r = Error::Remote {
            code: ErrorCode::Conflict,
            offset: None,
            message: "write conflict".into(),
        };
        assert!(r.is_transient());
        assert_eq!(r.parse_offset(), None);
    }
}
