//! Shared vocabulary types for the Immortal DB engine.
//!
//! This crate has no dependencies and defines the identifiers, timestamp
//! representation, error type and little byte-codec helpers that every
//! other crate in the workspace builds on.
//!
//! The timestamp design follows §2.1 of the paper: an 8-byte "clock time"
//! with deliberately coarse 20 ms resolution (mirroring the SQL Server
//! date/time type) extended by a 4-byte sequence number so that every
//! transaction committing within the same 20 ms tick still receives a
//! unique, correctly ordered timestamp.

pub mod codec;
pub mod error;
pub mod ids;
pub mod time;

pub use error::{Error, ErrorCode, Result};
pub use ids::{Lsn, PageId, Tid, TreeId, INVALID_PAGE, NULL_LSN};
pub use time::{Clock, SimClock, SystemClock, Timestamp, TICK_MS};

/// Size of every on-disk page, in bytes (the paper's experiments use 8 KB
/// SQL Server pages).
pub const PAGE_SIZE: usize = 8192;

/// Number of trailing bytes appended to each record version for
/// timestamping and version chaining (Fig. 1b of the paper):
/// `VP:u16 | Ttime:u64 | SN:u32`.
pub const VERSION_TAIL: usize = 14;
