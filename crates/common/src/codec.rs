//! Fixed-layout byte codecs.
//!
//! The engine controls its own on-disk bytes; these helpers read/write
//! little-endian integers at explicit offsets (page fields) or through a
//! cursor (log records), plus memcomparable key encodings so integer keys
//! sort correctly as byte strings, and a small table-driven CRC32 for log
//! record validation.

use crate::error::{Error, Result};

// ---------------------------------------------------------------------
// Positioned accessors (page fields at fixed offsets)
// ---------------------------------------------------------------------

#[inline]
pub fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([buf[off], buf[off + 1]])
}

#[inline]
pub fn put_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

#[inline]
pub fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

#[inline]
pub fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

#[inline]
pub fn get_u64(buf: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[off..off + 8]);
    u64::from_le_bytes(b)
}

#[inline]
pub fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

// ---------------------------------------------------------------------
// Cursor-style reader/writer (log record payloads)
// ---------------------------------------------------------------------

/// Sequential writer appending to a `Vec<u8>`.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    pub fn with_capacity(n: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(n),
        }
    }

    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }
    /// Length-prefixed byte string (u32 length).
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }
    /// Raw bytes with no length prefix.
    pub fn raw(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Sequential reader over a byte slice. Every accessor is bounds-checked
/// and returns [`Error::Corruption`] on truncation, so malformed log
/// records cannot panic the recovery pass.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(Error::Corruption(format!(
                "truncated payload: need {n} bytes at offset {} of {}",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    pub fn u16(&mut self) -> Result<u16> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }
    pub fn u32(&mut self) -> Result<u32> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }
    pub fn u64(&mut self) -> Result<u64> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }
    /// Length-prefixed byte string written by [`Writer::bytes`].
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }
    /// Raw bytes with an out-of-band length.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the whole payload was consumed — catches format drift.
    pub fn expect_end(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(Error::Corruption(format!(
                "{} unconsumed payload bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Memcomparable key encodings
// ---------------------------------------------------------------------

/// Encode an `i64` so that unsigned byte-string comparison matches signed
/// integer comparison (flip the sign bit, big-endian).
pub fn key_from_i64(v: i64) -> [u8; 8] {
    ((v as u64) ^ (1 << 63)).to_be_bytes()
}

/// Inverse of [`key_from_i64`].
pub fn i64_from_key(k: &[u8]) -> Result<i64> {
    if k.len() != 8 {
        return Err(Error::Corruption(format!("i64 key of {} bytes", k.len())));
    }
    let mut b = [0u8; 8];
    b.copy_from_slice(k);
    Ok((u64::from_be_bytes(b) ^ (1 << 63)) as i64)
}

/// Encode a `u64` as a memcomparable key (plain big-endian).
pub fn key_from_u64(v: u64) -> [u8; 8] {
    v.to_be_bytes()
}

/// Inverse of [`key_from_u64`].
pub fn u64_from_key(k: &[u8]) -> Result<u64> {
    if k.len() != 8 {
        return Err(Error::Corruption(format!("u64 key of {} bytes", k.len())));
    }
    let mut b = [0u8; 8];
    b.copy_from_slice(k);
    Ok(u64::from_be_bytes(b))
}

// ---------------------------------------------------------------------
// CRC32 (IEEE) — table-driven, used to validate WAL records
// ---------------------------------------------------------------------

fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, e) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        table
    })
}

/// CRC32 (IEEE 802.3 polynomial) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positioned_roundtrip() {
        let mut buf = [0u8; 32];
        put_u16(&mut buf, 1, 0xBEEF);
        put_u32(&mut buf, 4, 0xDEAD_BEEF);
        put_u64(&mut buf, 10, u64::MAX - 3);
        assert_eq!(get_u16(&buf, 1), 0xBEEF);
        assert_eq!(get_u32(&buf, 4), 0xDEAD_BEEF);
        assert_eq!(get_u64(&buf, 10), u64::MAX - 3);
    }

    #[test]
    fn cursor_roundtrip() {
        let mut w = Writer::new();
        w.u8(7)
            .u16(300)
            .u32(70_000)
            .u64(1 << 40)
            .bytes(b"hello")
            .raw(b"xy");
        let v = w.finish();
        let mut r = Reader::new(&v);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.raw(2).unwrap(), b"xy");
        r.expect_end().unwrap();
    }

    #[test]
    fn reader_rejects_truncation() {
        let v = vec![1u8, 2];
        let mut r = Reader::new(&v);
        assert!(r.u32().is_err());
    }

    #[test]
    fn reader_rejects_trailing_garbage() {
        let v = vec![1u8, 2, 3];
        let mut r = Reader::new(&v);
        r.u8().unwrap();
        assert!(r.expect_end().is_err());
    }

    #[test]
    fn i64_keys_sort_like_integers() {
        let vals = [i64::MIN, -5, -1, 0, 1, 5, i64::MAX];
        let keys: Vec<_> = vals.iter().map(|&v| key_from_i64(v)).collect();
        for w in keys.windows(2) {
            assert!(w[0] < w[1]);
        }
        for &v in &vals {
            assert_eq!(i64_from_key(&key_from_i64(v)).unwrap(), v);
        }
    }

    #[test]
    fn u64_keys_sort_like_integers() {
        assert!(key_from_u64(1) < key_from_u64(2));
        assert!(key_from_u64(255) < key_from_u64(256));
        assert_eq!(u64_from_key(&key_from_u64(42)).unwrap(), 42);
    }

    #[test]
    fn key_decode_rejects_bad_length() {
        assert!(i64_from_key(b"short").is_err());
        assert!(u64_from_key(b"toolongtoolong").is_err());
    }

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_flip() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }
}
