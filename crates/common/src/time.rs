//! Timestamps and clocks (§2.1 of the paper).
//!
//! A [`Timestamp`] is the pair `(ttime, sn)`: `ttime` is a wall-clock
//! millisecond value quantized to 20 ms ticks (matching the resolution of
//! the SQL Server date/time type the paper extends), and `sn` is a 4-byte
//! sequence number distinguishing up to 2^32 transactions inside one tick.
//!
//! A timestamp is chosen **at commit** so that timestamp order agrees with
//! serialization order; issuing is serialized by the transaction manager's
//! timestamp authority (in `immortaldb-txn`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Clock tick granularity in milliseconds. The paper: "the SQL date/time
/// function returns an eight byte time with a resolution of 20ms".
pub const TICK_MS: u64 = 20;

/// Sequence number sentinel marking a *non-timestamped* record: when a
/// record's SN field holds this value, its Ttime field contains the TID of
/// the updating transaction instead of a commit time.
pub const SN_TID_MARK: u32 = u32::MAX;

/// A transaction-time timestamp: 20 ms-resolution clock time plus a
/// sequence number. Total order is lexicographic `(ttime, sn)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Timestamp {
    /// Milliseconds since the UNIX epoch, quantized to [`TICK_MS`].
    pub ttime: u64,
    /// Sequence number within the tick (`< SN_TID_MARK`).
    pub sn: u32,
}

impl Timestamp {
    /// The smallest possible timestamp; earlier than any commit.
    pub const ZERO: Timestamp = Timestamp { ttime: 0, sn: 0 };
    /// A timestamp later than any commit; used as the open upper bound of
    /// current pages' time ranges.
    pub const MAX: Timestamp = Timestamp {
        ttime: u64::MAX,
        sn: SN_TID_MARK - 1,
    };

    pub fn new(ttime: u64, sn: u32) -> Self {
        debug_assert!(sn < SN_TID_MARK, "SN_TID_MARK is reserved");
        Timestamp { ttime, sn }
    }

    /// The inclusive upper bound for "AS OF `ttime`" queries expressed as
    /// a raw clock time: any transaction committing within or before this
    /// tick is visible.
    pub fn as_of_clock(ttime_ms: u64) -> Self {
        Timestamp {
            ttime: quantize(ttime_ms),
            sn: SN_TID_MARK - 1,
        }
    }
}

/// Quantize a millisecond value down to the 20 ms grid.
#[inline]
pub fn quantize(ms: u64) -> u64 {
    ms - (ms % TICK_MS)
}

/// Source of wall-clock milliseconds. Injected so tests and benchmarks can
/// drive deterministic virtual time; the engine never calls
/// `SystemTime::now` directly.
pub trait Clock: Send + Sync {
    /// Current time in milliseconds since the UNIX epoch.
    fn now_ms(&self) -> u64;
}

/// Real wall-clock time.
#[derive(Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .expect("system clock before UNIX epoch")
            .as_millis() as u64
    }
}

/// A manually advanced clock for deterministic tests and simulations.
pub struct SimClock {
    ms: AtomicU64,
}

impl SimClock {
    pub fn new(start_ms: u64) -> Self {
        SimClock {
            ms: AtomicU64::new(start_ms),
        }
    }

    /// Advance the clock by `delta_ms` milliseconds.
    pub fn advance(&self, delta_ms: u64) {
        self.ms.fetch_add(delta_ms, Ordering::SeqCst);
    }

    /// Set the clock to an absolute value. Panics if this would move the
    /// clock backwards (the engine requires monotone time).
    pub fn set(&self, ms: u64) {
        let prev = self.ms.swap(ms, Ordering::SeqCst);
        assert!(prev <= ms, "SimClock moved backwards: {prev} -> {ms}");
    }
}

impl Clock for SimClock {
    fn now_ms(&self) -> u64 {
        self.ms.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_to_tick_grid() {
        assert_eq!(quantize(0), 0);
        assert_eq!(quantize(19), 0);
        assert_eq!(quantize(20), 20);
        assert_eq!(quantize(39), 20);
        assert_eq!(quantize(40), 40);
    }

    #[test]
    fn timestamp_ordering_is_lexicographic() {
        let a = Timestamp::new(20, 5);
        let b = Timestamp::new(20, 6);
        let c = Timestamp::new(40, 0);
        assert!(a < b && b < c);
        assert!(Timestamp::ZERO < a);
        assert!(c < Timestamp::MAX);
    }

    #[test]
    fn as_of_clock_is_inclusive_upper_bound_of_tick() {
        let q = Timestamp::as_of_clock(45);
        assert_eq!(q.ttime, 40);
        // Any SN within tick 40 is <= q.
        assert!(Timestamp::new(40, 1_000_000) <= q);
        assert!(Timestamp::new(60, 0) > q);
    }

    #[test]
    fn sim_clock_advances() {
        let c = SimClock::new(100);
        assert_eq!(c.now_ms(), 100);
        c.advance(50);
        assert_eq!(c.now_ms(), 150);
        c.set(200);
        assert_eq!(c.now_ms(), 200);
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn sim_clock_rejects_backwards() {
        let c = SimClock::new(100);
        c.set(50);
    }

    #[test]
    fn system_clock_is_sane() {
        // After 2020-01-01 in ms.
        assert!(SystemClock.now_ms() > 1_577_836_800_000);
    }
}
