//! Identifier newtypes used across the engine.

use std::fmt;

/// Physical page number within the database file. Page 0 is the meta page;
/// [`INVALID_PAGE`] (0) therefore doubles as the "no page" sentinel in
/// all page-link fields (history chains, sibling links, child pointers).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u32);

/// The "no page" sentinel. The meta page itself is never the target of a
/// link field, so reusing its number is unambiguous.
pub const INVALID_PAGE: PageId = PageId(0);

impl PageId {
    /// Returns true if this id refers to a real, linkable page.
    #[inline]
    pub fn is_valid(self) -> bool {
        self.0 != 0
    }
    /// Byte offset of this page within the database file.
    #[inline]
    pub fn file_offset(self, page_size: usize) -> u64 {
        self.0 as u64 * page_size as u64
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Transaction identifier. TIDs are assigned in ascending order by the
/// transaction manager, which keeps the active tail of the persistent
/// timestamp table clustered (§2.2). TID 0 is reserved for system
/// (redo-only) actions such as page splits.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tid(pub u64);

impl Tid {
    /// Pseudo-transaction used for redo-only structure modifications.
    pub const SYSTEM: Tid = Tid(0);
}

impl fmt::Debug for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Log sequence number: the byte offset of a log record in the WAL.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

/// "No LSN": used for the first record of a transaction's backchain and
/// for pages that have never been touched.
pub const NULL_LSN: Lsn = Lsn(0);

impl Lsn {
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Stable identifier of a B-tree (table or index). The meta page maps
/// `TreeId -> root PageId` so that logical undo can re-descend a tree even
/// after its root has moved. TreeId 1 is reserved for the persistent
/// timestamp table, TreeId 2 for the catalog.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TreeId(pub u32);

impl TreeId {
    /// Persistent timestamp table (PTT).
    pub const PTT: TreeId = TreeId(1);
    /// System catalog.
    pub const CATALOG: TreeId = TreeId(2);
    /// First TreeId available for user tables.
    pub const FIRST_USER: TreeId = TreeId(16);
}

impl fmt::Debug for TreeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tree{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_id_validity() {
        assert!(!INVALID_PAGE.is_valid());
        assert!(PageId(1).is_valid());
        assert_eq!(PageId(3).file_offset(8192), 3 * 8192);
    }

    #[test]
    fn lsn_null() {
        assert!(NULL_LSN.is_null());
        assert!(!Lsn(10).is_null());
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Tid(2) < Tid(10));
        assert!(Lsn(5) < Lsn(6));
        assert!(PageId(1) < PageId(2));
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", PageId(7)), "P7");
        assert_eq!(format!("{:?}", Tid(9)), "T9");
        assert_eq!(format!("{:?}", Lsn(3)), "L3");
        assert_eq!(format!("{:?}", TreeId(4)), "tree4");
    }
}
