//! Always-on streaming isolation sentinel.
//!
//! The offline checker in `tests/isolation_check.rs` replays a recorded
//! history after the fact; this crate runs the same timestamp-based
//! argument *online*, while the engine serves traffic — the approach of
//! "Online Timestamp-based Transactional Isolation Checking" (PAPERS.md,
//! arXiv 2504.01477). The engine already exposes everything the check
//! needs: begin snapshots, commit timestamps, and the bytes each
//! operation read or wrote.
//!
//! Two halves:
//!
//! * [`EventTap`] — a lock-free bounded MPSC ring the engine's commit and
//!   rollback paths push one [`TxnEvent`] into per finished transaction.
//!   Pushing never blocks and never allocates beyond the event itself;
//!   when the ring is full the event is *dropped and counted* rather than
//!   stalling the hot path.
//! * [`Sentinel`] — a consumer thread that folds the event stream into
//!   per-key committed-version state and verifies, incrementally:
//!   snapshot-read consistency (every snapshot/AS OF read observed its
//!   own latest write, else the newest committed version at or below its
//!   snapshot), first-committer-wins (no foreign commit lands inside a
//!   committed snapshot writer's `(snapshot, commit)` window for a key it
//!   wrote), and no dirty reads (an observed value hash matching a rolled
//!   back write is flagged).
//!
//! The ordering contract that makes online checking sound: the engine
//! pushes a writer's commit event *before* `CommitHorizon::retire` makes
//! its timestamp visible. Any reader whose snapshot covers that commit
//! therefore sampled its snapshot after the push, and (because ring slots
//! are claimed with a single atomic ticket) enqueues its own event at a
//! later ring position — so the checker, consuming in ring order, always
//! knows every commit a read could have observed before it validates the
//! read.
//!
//! What the sentinel can NOT catch (see DESIGN.md §14): reads of state
//! written before the tap was armed (counted `unverifiable`, never
//! violations), anything after ring overflow (the checker *degrades* —
//! mismatches become `unverifiable` — because a dropped commit event
//! could explain them), and dirty reads whose reader finishes before the
//! aborting writer's rollback event is pushed.

pub mod sentinel;

pub use sentinel::{Sentinel, SentinelReport, Violation, ViolationKind};

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use immortaldb_common::Timestamp;
use parking_lot::Mutex;

// ---------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------

/// One operation of a transaction, in execution order. Keys and values
/// are 64-bit FNV-1a hashes of the raw key / encoded-row bytes — the
/// checker compares identities, never contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// A row version was written (insert or update): `value` hashes the
    /// encoded row bytes.
    Write { key: u64, value: u64 },
    /// A row was deleted (a tombstone version).
    Delete { key: u64 },
    /// A snapshot/AS OF read observed a row with this value hash.
    Read { key: u64, value: u64 },
    /// A snapshot/AS OF read observed no row for this key.
    ReadMiss { key: u64 },
}

impl Op {
    pub fn key(&self) -> u64 {
        match *self {
            Op::Write { key, .. }
            | Op::Delete { key }
            | Op::Read { key, .. }
            | Op::ReadMiss { key } => key,
        }
    }
}

/// Everything the checker needs to know about one finished transaction,
/// pushed exactly once at commit (before the commit timestamp becomes
/// visible) or rollback.
#[derive(Debug, Clone)]
pub struct TxnEvent {
    pub tid: u64,
    /// True for snapshot-isolation and AS OF transactions: reads were
    /// taken against `snapshot` and are validated; writes participate in
    /// first-committer-wins. Serializable transactions read the *current*
    /// locked state, so only their committed writes feed the version map.
    pub si: bool,
    /// Begin snapshot (the AS OF timestamp for historical readers).
    pub snapshot: Timestamp,
    /// `Some(ts)` for a committed writer; `None` for read-only commits
    /// and aborts.
    pub commit: Option<Timestamp>,
    /// True when the transaction rolled back (its writes must never be
    /// observed by anyone).
    pub aborted: bool,
    pub ops: Vec<Op>,
}

// ---------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

#[inline]
fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Identity hash of a row: the owning tree id plus the encoded key bytes.
#[inline]
pub fn hash_key(tree: u32, key: &[u8]) -> u64 {
    fnv1a(fnv1a(FNV_OFFSET, &tree.to_le_bytes()), key)
}

/// Content hash of an encoded row image.
#[inline]
pub fn hash_value(bytes: &[u8]) -> u64 {
    fnv1a(FNV_OFFSET, bytes)
}

// ---------------------------------------------------------------------
// The tap: a bounded lock-free MPSC ring
// ---------------------------------------------------------------------

struct Slot {
    /// Vyukov sequence: `pos` = free for ticket `pos`; `pos + 1` =
    /// published for ticket `pos`; `pos + capacity` = consumed, free for
    /// ticket `pos + capacity`.
    seq: AtomicUsize,
    value: UnsafeCell<Option<TxnEvent>>,
}

/// Lock-free bounded multi-producer single-consumer event ring, plus the
/// shared knobs the engine and the checker exchange out of band (drop
/// count, prune watermark, armed flag).
///
/// The producer side is wait-free apart from a bounded CAS loop; a full
/// ring drops the event and bumps [`EventTap::dropped`] instead of ever
/// blocking a commit.
pub struct EventTap {
    slots: Box<[Slot]>,
    mask: usize,
    /// Next ticket to claim (producers).
    tail: AtomicUsize,
    /// Next ticket to consume (single consumer; atomic only so backlog
    /// can be observed cheaply from other threads).
    head: AtomicUsize,
    dropped: AtomicU64,
    /// Oldest snapshot any in-flight transaction may still read;
    /// everything strictly older is safe to prune (the engine refreshes
    /// this from its snapshot/AS OF registries on the commit path).
    watermark: Mutex<Timestamp>,
}

unsafe impl Send for EventTap {}
unsafe impl Sync for EventTap {}

impl EventTap {
    /// Create a tap with capacity rounded up to a power of two (min 64).
    pub fn new(capacity: usize) -> Arc<EventTap> {
        let cap = capacity.max(64).next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(None),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Arc::new(EventTap {
            slots,
            mask: cap - 1,
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            watermark: Mutex::new(Timestamp::ZERO),
        })
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Push one event; on a full ring the event is dropped and counted.
    /// Returns whether the event was enqueued.
    pub fn push(&self, event: TxnEvent) -> bool {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                // Claim the ticket. AcqRel so that a push that
                // happens-after another push (via engine synchronization,
                // e.g. horizon retire → snapshot sample) always claims a
                // later ticket — the ordering contract in the crate docs.
                match self.tail.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // Safety: the ticket claim gives this thread
                        // exclusive ownership of the slot until the seq
                        // store publishes it.
                        unsafe { *slot.value.get() = Some(event) };
                        slot.seq.store(pos + 1, Ordering::Release);
                        return true;
                    }
                    Err(now) => pos = now,
                }
            } else if dif < 0 {
                // Full: the consumer has not freed this slot yet.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Pop the next event in ticket order (single consumer only).
    /// Returns `None` when the ring is empty *or* the next ticket's
    /// producer has claimed but not yet published its slot — order is
    /// never reshuffled around a slow producer.
    pub fn pop(&self) -> Option<TxnEvent> {
        let pos = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[pos & self.mask];
        let seq = slot.seq.load(Ordering::Acquire);
        if seq == pos + 1 {
            // Safety: published and not yet consumed; single consumer.
            let v = unsafe { (*slot.value.get()).take() };
            slot.seq.store(pos + self.slots.len(), Ordering::Release);
            self.head.store(pos + 1, Ordering::Relaxed);
            v
        } else {
            None
        }
    }

    /// Events lost to a full ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Approximate number of events waiting in the ring.
    pub fn backlog(&self) -> usize {
        self.tail
            .load(Ordering::Relaxed)
            .saturating_sub(self.head.load(Ordering::Relaxed))
    }

    /// Engine-side: publish the oldest snapshot any in-flight transaction
    /// may still read. Monotonic (regressions are ignored).
    pub fn set_watermark(&self, ts: Timestamp) {
        let mut w = self.watermark.lock();
        if ts > *w {
            *w = ts;
        }
    }

    /// Checker-side: current prune watermark.
    pub fn watermark(&self) -> Timestamp {
        *self.watermark.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ev(tid: u64) -> TxnEvent {
        TxnEvent {
            tid,
            si: true,
            snapshot: Timestamp::ZERO,
            commit: None,
            aborted: false,
            ops: Vec::new(),
        }
    }

    #[test]
    fn ring_preserves_fifo_and_counts_drops() {
        let tap = EventTap::new(64);
        for i in 0..64 {
            assert!(tap.push(ev(i)));
        }
        // Full: further pushes drop.
        assert!(!tap.push(ev(999)));
        assert_eq!(tap.dropped(), 1);
        assert_eq!(tap.backlog(), 64);
        for i in 0..64 {
            assert_eq!(tap.pop().unwrap().tid, i);
        }
        assert!(tap.pop().is_none());
        // Freed slots accept new events again.
        assert!(tap.push(ev(1000)));
        assert_eq!(tap.pop().unwrap().tid, 1000);
    }

    #[test]
    fn concurrent_producers_deliver_every_event_once() {
        let tap = EventTap::new(4096);
        let producers = 8;
        let per = 400;
        let mut handles = Vec::new();
        for p in 0..producers {
            let t = Arc::clone(&tap);
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    while !t.push(ev((p * per + i) as u64)) {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        let consumer = {
            let t = Arc::clone(&tap);
            std::thread::spawn(move || {
                let mut seen = vec![false; producers * per];
                let mut n = 0;
                while n < producers * per {
                    if let Some(e) = t.pop() {
                        assert!(!seen[e.tid as usize], "duplicate event {}", e.tid);
                        seen[e.tid as usize] = true;
                        n += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        consumer.join().unwrap();
        assert_eq!(tap.dropped(), 0);
    }

    #[test]
    fn watermark_is_monotonic() {
        let tap = EventTap::new(64);
        tap.set_watermark(Timestamp::new(100, 0));
        tap.set_watermark(Timestamp::new(40, 0)); // ignored
        assert_eq!(tap.watermark(), Timestamp::new(100, 0));
        tap.set_watermark(Timestamp::new(100, 5));
        assert_eq!(tap.watermark(), Timestamp::new(100, 5));
    }

    #[test]
    fn hashes_separate_trees_and_contents() {
        assert_ne!(hash_key(1, b"k"), hash_key(2, b"k"));
        assert_ne!(hash_key(1, b"k1"), hash_key(1, b"k2"));
        assert_ne!(hash_value(b"row-a"), hash_value(b"row-b"));
        assert_eq!(hash_value(b"row-a"), hash_value(b"row-a"));
    }
}
