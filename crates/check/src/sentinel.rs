//! The incremental checker thread behind the [`EventTap`].
//!
//! State is a per-key fold of the committed history since arming:
//!
//! * `versions` — committed `(ts, value hash, tombstone)` triples,
//!   ascending, pruned to "newest at or below the watermark plus
//!   everything above it" (exactly what any live snapshot can observe);
//! * `intervals` — committed snapshot-isolation writers' `(snapshot,
//!   commit)` windows, kept until the watermark passes the commit so a
//!   late-arriving sibling commit can still be checked against them;
//! * `aborted` — value hashes of rolled-back writes (observing one is a
//!   dirty read), cleared on each watermark advance.
//!
//! Every rule errs on the side of *no false alarms*: reads that land
//! where the checker has no committed knowledge (pre-arm rows, pruned
//! history, anything after a ring overflow) count as `unverifiable`, not
//! violations. First-committer-wins overlaps are the exception — they
//! are positive evidence of two commits in the same window and stay
//! violations even in degraded mode.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use immortaldb_common::Timestamp;
use immortaldb_obs::MetricsRegistry;
use parking_lot::Mutex;

use crate::{EventTap, Op, TxnEvent};

/// What went wrong, in checker terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A snapshot/AS OF read observed something other than the newest
    /// committed version at or below its snapshot.
    SnapshotRead,
    /// A transaction failed to observe its own earlier write.
    OwnWrite,
    /// Two committed writers of the same key with overlapping
    /// `(snapshot, commit)` windows — first-committer-wins broken.
    FirstCommitterWins,
    /// A read observed a value hash recorded by a rolled-back write.
    DirtyRead,
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ViolationKind::SnapshotRead => "snapshot-read",
            ViolationKind::OwnWrite => "own-write",
            ViolationKind::FirstCommitterWins => "first-committer-wins",
            ViolationKind::DirtyRead => "dirty-read",
        })
    }
}

/// One confirmed isolation violation.
#[derive(Debug, Clone)]
pub struct Violation {
    pub kind: ViolationKind,
    /// Transaction the violating observation/commit belongs to.
    pub tid: u64,
    /// Key hash involved.
    pub key: u64,
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] txn {} key {:#018x}: {}",
            self.kind, self.tid, self.key, self.detail
        )
    }
}

/// Final (or point-in-time) accounting of a sentinel run.
#[derive(Debug, Clone, Default)]
pub struct SentinelReport {
    /// Transaction events processed.
    pub events: u64,
    /// Events lost to ring overflow (from the tap's counter).
    pub dropped: u64,
    /// Individual reads validated against the version map.
    pub reads_checked: u64,
    /// Committed writer events folded into the version map.
    pub commits_checked: u64,
    /// Reads the checker had no committed knowledge to judge.
    pub unverifiable: u64,
    /// Total violations found (the list below is capped).
    pub violation_count: u64,
    /// First violations, capped at [`MAX_VIOLATIONS`].
    pub violations: Vec<Violation>,
    /// True once any event was dropped: read mismatches after that point
    /// are reported as unverifiable, not violations.
    pub degraded: bool,
}

/// Cap on retained violation details (the counter keeps exact totals).
pub const MAX_VIOLATIONS: usize = 64;

/// Bound on remembered aborted-write hashes per key between prunes.
const MAX_ABORTED_PER_KEY: usize = 16;

#[derive(Debug, Clone, Copy)]
struct Version {
    ts: Timestamp,
    value: u64,
    tombstone: bool,
}

#[derive(Debug, Default)]
struct KeyState {
    /// Committed versions, ascending by timestamp.
    versions: Vec<Version>,
    /// Committed SI writers' (snapshot, commit) windows.
    intervals: Vec<(Timestamp, Timestamp)>,
    /// Rolled-back write hashes (dirty-read bait).
    aborted: Vec<u64>,
}

impl KeyState {
    /// Newest committed version at or below `snapshot`.
    fn visible_at(&self, snapshot: Timestamp) -> Option<Version> {
        self.versions
            .iter()
            .rev()
            .find(|v| v.ts <= snapshot)
            .copied()
    }

    fn insert_version(&mut self, v: Version) {
        // Commit events arrive near timestamp order but not exactly (the
        // push precedes retire, and siblings race); insert sorted.
        let at = self.versions.partition_point(|x| x.ts <= v.ts);
        self.versions.insert(at, v);
    }
}

/// The checker core, separable from the thread for unit tests.
#[derive(Default)]
pub struct Checker {
    keys: HashMap<u64, KeyState>,
    report: SentinelReport,
}

impl Checker {
    pub fn new() -> Checker {
        Checker::default()
    }

    fn violation(&mut self, kind: ViolationKind, tid: u64, key: u64, detail: String) {
        self.report.violation_count += 1;
        if self.report.violations.len() < MAX_VIOLATIONS {
            self.report.violations.push(Violation {
                kind,
                tid,
                key,
                detail,
            });
        }
    }

    /// Fold one transaction event into the state, checking as we go.
    pub fn process(&mut self, event: &TxnEvent) {
        self.report.events += 1;

        // 1. Validate reads in execution order (snapshot/AS OF readers
        // only; serializable transactions read the locked current state,
        // which the snapshot argument says nothing about). Rolled-back
        // readers still took real snapshot reads, so they are checked
        // identically.
        if event.si {
            self.check_reads(event);
        }

        match (event.commit, event.aborted) {
            (Some(ts), false) => self.apply_commit(event, ts),
            _ if event.aborted => self.apply_abort(event),
            _ => {} // read-only commit: nothing to fold
        }
    }

    fn check_reads(&mut self, event: &TxnEvent) {
        let mut own: HashMap<u64, Option<u64>> = HashMap::new(); // None = deleted
        for op in &event.ops {
            match *op {
                Op::Write { key, value } => {
                    own.insert(key, Some(value));
                }
                Op::Delete { key } => {
                    own.insert(key, None);
                }
                Op::Read { key, value } => {
                    if let Some(own_state) = own.get(&key) {
                        self.report.reads_checked += 1;
                        match own_state {
                            Some(v) if *v == value => {}
                            Some(_) => self.violation(
                                ViolationKind::OwnWrite,
                                event.tid,
                                key,
                                "read returned a different value than the \
                                 transaction's own latest write"
                                    .into(),
                            ),
                            None => self.violation(
                                ViolationKind::OwnWrite,
                                event.tid,
                                key,
                                "read returned a row the transaction itself deleted".into(),
                            ),
                        }
                        continue;
                    }
                    let snapshot = event.snapshot;
                    let (visible, dirty) = match self.keys.get(&key) {
                        Some(ks) => (ks.visible_at(snapshot), ks.aborted.contains(&value)),
                        None => (None, false),
                    };
                    if dirty {
                        // Positive evidence regardless of degraded mode:
                        // that exact hash was recorded by a rollback.
                        self.report.reads_checked += 1;
                        self.violation(
                            ViolationKind::DirtyRead,
                            event.tid,
                            key,
                            "observed value hash matches a rolled-back write".into(),
                        );
                        continue;
                    }
                    match visible {
                        Some(v) if !v.tombstone && v.value == value => {
                            self.report.reads_checked += 1;
                        }
                        Some(v) => {
                            if self.report.degraded {
                                self.report.unverifiable += 1;
                            } else {
                                self.report.reads_checked += 1;
                                let what = if v.tombstone {
                                    "a row its snapshot says was deleted"
                                } else {
                                    "a value other than the newest committed \
                                     version at its snapshot"
                                };
                                self.violation(
                                    ViolationKind::SnapshotRead,
                                    event.tid,
                                    key,
                                    format!(
                                        "snapshot {}.{} observed {what} (expected ts {}.{})",
                                        snapshot.ttime, snapshot.sn, v.ts.ttime, v.ts.sn
                                    ),
                                );
                            }
                        }
                        // No committed knowledge at or below the
                        // snapshot: pre-arm data or pruned history.
                        None => self.report.unverifiable += 1,
                    }
                }
                Op::ReadMiss { key } => {
                    if let Some(own_state) = own.get(&key) {
                        self.report.reads_checked += 1;
                        if own_state.is_some() {
                            self.violation(
                                ViolationKind::OwnWrite,
                                event.tid,
                                key,
                                "read missed a row the transaction itself wrote".into(),
                            );
                        }
                        continue;
                    }
                    match self
                        .keys
                        .get(&key)
                        .and_then(|ks| ks.visible_at(event.snapshot))
                    {
                        Some(v) if v.tombstone => self.report.reads_checked += 1,
                        Some(v) => {
                            if self.report.degraded {
                                self.report.unverifiable += 1;
                            } else {
                                self.report.reads_checked += 1;
                                self.violation(
                                    ViolationKind::SnapshotRead,
                                    event.tid,
                                    key,
                                    format!(
                                        "read missed the version committed at {}.{} \
                                         below its snapshot",
                                        v.ts.ttime, v.ts.sn
                                    ),
                                );
                            }
                        }
                        // Nothing known at or below the snapshot: a miss
                        // is the consistent outcome for every post-arm
                        // history we have seen (pre-arm rows would make
                        // it wrong, but that is unknowable — accept).
                        None => self.report.reads_checked += 1,
                    }
                }
            }
        }
    }

    fn apply_commit(&mut self, event: &TxnEvent, commit: Timestamp) {
        // Final write per key wins (the version visible at ts >= commit).
        let mut finals: HashMap<u64, Option<u64>> = HashMap::new();
        let mut wrote_any = false;
        for op in &event.ops {
            match *op {
                Op::Write { key, value } => {
                    finals.insert(key, Some(value));
                    wrote_any = true;
                }
                Op::Delete { key } => {
                    finals.insert(key, None);
                    wrote_any = true;
                }
                _ => {}
            }
        }
        if wrote_any {
            self.report.commits_checked += 1;
        }
        for (key, value) in finals {
            let mut fcw: Vec<String> = Vec::new();
            {
                let ks = self.keys.entry(key).or_default();
                // First-committer-wins, both arrival orders. (a) An
                // earlier processed commit whose timestamp falls inside
                // this SI writer's window: this writer read a snapshot, a
                // sibling committed the same key after it, and this
                // writer committed anyway.
                if event.si {
                    if let Some(v) = ks
                        .versions
                        .iter()
                        .find(|v| v.ts > event.snapshot && v.ts < commit)
                    {
                        fcw.push(format!(
                            "foreign commit {}.{} inside ({}.{}, {}.{})",
                            v.ts.ttime,
                            v.ts.sn,
                            event.snapshot.ttime,
                            event.snapshot.sn,
                            commit.ttime,
                            commit.sn
                        ));
                    }
                }
                // (b) This commit lands inside an already-recorded SI
                // writer's window (the sibling's event arrived first).
                if let Some((s0, c0)) = ks
                    .intervals
                    .iter()
                    .find(|(s0, c0)| commit > *s0 && commit < *c0)
                    .copied()
                {
                    fcw.push(format!(
                        "commit {}.{} inside a sibling SI writer's window ({}.{}, {}.{})",
                        commit.ttime, commit.sn, s0.ttime, s0.sn, c0.ttime, c0.sn
                    ));
                }
                if event.si {
                    ks.intervals.push((event.snapshot, commit));
                }
                ks.insert_version(Version {
                    ts: commit,
                    value: value.unwrap_or(0),
                    tombstone: value.is_none(),
                });
            }
            for detail in fcw {
                self.violation(ViolationKind::FirstCommitterWins, event.tid, key, detail);
            }
        }
    }

    fn apply_abort(&mut self, event: &TxnEvent) {
        for op in &event.ops {
            if let Op::Write { key, value } = *op {
                let ks = self.keys.entry(key).or_default();
                if ks.aborted.len() < MAX_ABORTED_PER_KEY {
                    ks.aborted.push(value);
                }
            }
        }
    }

    /// Drop state no live snapshot can observe: everything strictly below
    /// the newest version at or below `watermark`, SI windows that closed
    /// below it, and remembered aborted hashes (their concurrent readers
    /// are gone once the watermark passed them).
    pub fn prune(&mut self, watermark: Timestamp) {
        if watermark == Timestamp::ZERO {
            return;
        }
        self.keys.retain(|_, ks| {
            if let Some(keep_from) = ks.versions.iter().rposition(|v| v.ts <= watermark) {
                ks.versions.drain(..keep_from);
            }
            ks.intervals.retain(|(_, c)| *c > watermark);
            ks.aborted.clear();
            !ks.versions.is_empty() || !ks.intervals.is_empty()
        });
    }

    /// Note that the tap dropped events: the committed-version map may be
    /// missing history, so read mismatches stop being provable.
    pub fn mark_degraded(&mut self, dropped: u64) {
        self.report.dropped = dropped;
        if dropped > 0 {
            self.report.degraded = true;
        }
    }

    pub fn report(&self) -> SentinelReport {
        self.report.clone()
    }

    /// Number of keys currently tracked (state-bound tests).
    pub fn tracked_keys(&self) -> usize {
        self.keys.len()
    }
}

// ---------------------------------------------------------------------
// The sentinel thread
// ---------------------------------------------------------------------

struct Inner {
    tap: Arc<EventTap>,
    checker: Mutex<Checker>,
    stop: std::sync::atomic::AtomicBool,
}

/// Handle to a running sentinel. Spawn with [`Sentinel::spawn`]; call
/// [`Sentinel::stop`] to drain the ring and collect the final report, or
/// [`Sentinel::report`] for a live snapshot while it keeps running.
pub struct Sentinel {
    inner: Arc<Inner>,
    handle: Option<JoinHandle<()>>,
}

impl Sentinel {
    /// Start the checker thread over `tap`, mirroring progress into the
    /// `check.*` instruments of `metrics`.
    pub fn spawn(tap: Arc<EventTap>, metrics: MetricsRegistry) -> Sentinel {
        let inner = Arc::new(Inner {
            tap,
            checker: Mutex::new(Checker::new()),
            stop: std::sync::atomic::AtomicBool::new(false),
        });
        let inner2 = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("imdb-sentinel".into())
            .spawn(move || run(&inner2, &metrics))
            .expect("spawn sentinel thread");
        Sentinel {
            inner,
            handle: Some(handle),
        }
    }

    /// Live snapshot of the report (the thread keeps running).
    pub fn report(&self) -> SentinelReport {
        let mut c = self.inner.checker.lock();
        c.mark_degraded(self.inner.tap.dropped());
        c.report()
    }

    /// Stop the thread, drain every remaining event, and return the
    /// final report.
    pub fn stop(mut self) -> SentinelReport {
        self.inner
            .stop
            .store(true, std::sync::atomic::Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        let mut c = self.inner.checker.lock();
        c.mark_degraded(self.inner.tap.dropped());
        c.report()
    }
}

impl Drop for Sentinel {
    fn drop(&mut self) {
        self.inner
            .stop
            .store(true, std::sync::atomic::Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn run(inner: &Inner, metrics: &MetricsRegistry) {
    // Pruning walks the whole key map, so it must be amortized over many
    // events: under trickle arrival (one commit per poll) a prune per
    // batch degenerates to a prune per event — O(events x keys) — which
    // on a loaded host costs more than the checking itself.
    const PRUNE_EVERY: usize = 4096;
    let mut since_prune = 0usize;
    loop {
        let stopping = inner.stop.load(std::sync::atomic::Ordering::SeqCst);
        let mut processed = 0usize;
        {
            let mut checker = inner.checker.lock();
            // Bounded batch per lock hold so report() never starves.
            while processed < 256 {
                match inner.tap.pop() {
                    Some(event) => {
                        checker.process(&event);
                        processed += 1;
                    }
                    None => break,
                }
            }
            if processed > 0 {
                since_prune += processed;
                if since_prune >= PRUNE_EVERY {
                    checker.prune(inner.tap.watermark());
                    since_prune = 0;
                }
                checker.mark_degraded(inner.tap.dropped());
                let r = &checker.report;
                metrics.check.events.add(processed as u64);
                metrics.check.violations_gauge.set(r.violation_count);
                metrics.check.reads_checked_gauge.set(r.reads_checked);
                metrics.check.commits_checked_gauge.set(r.commits_checked);
                metrics.check.unverifiable_gauge.set(r.unverifiable);
            }
            metrics.check.dropped_gauge.set(inner.tap.dropped());
            metrics.check.backlog.set(inner.tap.backlog() as u64);
        }
        if processed == 0 {
            if stopping {
                return;
            }
            // Plain sleep, never a yield loop: yielding on a loaded
            // single-core host re-runs the checker immediately and taxes
            // the threads doing real work; 0.5 ms of check latency is
            // irrelevant for an online monitor.
            std::thread::sleep(Duration::from_micros(500));
        } else if since_prune >= PRUNE_EVERY / 4 && inner.tap.backlog() == 0 {
            // Caught up: take the map walk now, off the hot path.
            inner.checker.lock().prune(inner.tap.watermark());
            since_prune = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(t: u64, sn: u32) -> Timestamp {
        Timestamp::new(t, sn)
    }

    fn commit_write(
        tid: u64,
        snap: Timestamp,
        commit: Timestamp,
        key: u64,
        value: u64,
    ) -> TxnEvent {
        TxnEvent {
            tid,
            si: true,
            snapshot: snap,
            commit: Some(commit),
            aborted: false,
            ops: vec![Op::Write { key, value }],
        }
    }

    fn reader(tid: u64, snap: Timestamp, ops: Vec<Op>) -> TxnEvent {
        TxnEvent {
            tid,
            si: true,
            snapshot: snap,
            commit: None,
            aborted: false,
            ops,
        }
    }

    #[test]
    fn clean_history_passes() {
        let mut c = Checker::new();
        c.process(&commit_write(1, ts(0, 0), ts(20, 0), 7, 100));
        c.process(&commit_write(2, ts(20, 0), ts(40, 0), 7, 200));
        // Reader at 20 sees version 100; reader at 40 sees 200.
        c.process(&reader(3, ts(20, 0), vec![Op::Read { key: 7, value: 100 }]));
        c.process(&reader(4, ts(40, 0), vec![Op::Read { key: 7, value: 200 }]));
        let r = c.report();
        assert_eq!(r.violation_count, 0, "{:?}", r.violations);
        assert_eq!(r.reads_checked, 2);
        assert_eq!(r.commits_checked, 2);
    }

    #[test]
    fn stale_read_is_flagged() {
        let mut c = Checker::new();
        c.process(&commit_write(1, ts(0, 0), ts(20, 0), 7, 100));
        c.process(&commit_write(2, ts(20, 0), ts(40, 0), 7, 200));
        // Snapshot 40 must see 200, observed 100.
        c.process(&reader(3, ts(40, 0), vec![Op::Read { key: 7, value: 100 }]));
        let r = c.report();
        assert_eq!(r.violation_count, 1);
        assert_eq!(r.violations[0].kind, ViolationKind::SnapshotRead);
    }

    #[test]
    fn missed_row_is_flagged() {
        let mut c = Checker::new();
        c.process(&commit_write(1, ts(0, 0), ts(20, 0), 7, 100));
        c.process(&reader(2, ts(20, 0), vec![Op::ReadMiss { key: 7 }]));
        let r = c.report();
        assert_eq!(r.violation_count, 1);
        assert_eq!(r.violations[0].kind, ViolationKind::SnapshotRead);
    }

    #[test]
    fn tombstones_make_misses_legal() {
        let mut c = Checker::new();
        c.process(&commit_write(1, ts(0, 0), ts(20, 0), 7, 100));
        c.process(&TxnEvent {
            tid: 2,
            si: true,
            snapshot: ts(20, 0),
            commit: Some(ts(40, 0)),
            aborted: false,
            ops: vec![Op::Delete { key: 7 }],
        });
        c.process(&reader(3, ts(40, 0), vec![Op::ReadMiss { key: 7 }]));
        c.process(&reader(4, ts(20, 0), vec![Op::Read { key: 7, value: 100 }]));
        let r = c.report();
        assert_eq!(r.violation_count, 0, "{:?}", r.violations);
    }

    #[test]
    fn fcw_overlap_detected_in_both_arrival_orders() {
        // W1 (snap 0, commit 20) and W2 (snap 0, commit 40) both write
        // key 7 and both commit: W2's window contains W1's commit.
        let mut c = Checker::new();
        c.process(&commit_write(1, ts(0, 0), ts(20, 0), 7, 100));
        c.process(&commit_write(2, ts(0, 0), ts(40, 0), 7, 200));
        assert_eq!(c.report().violation_count, 1);
        assert_eq!(
            c.report().violations[0].kind,
            ViolationKind::FirstCommitterWins
        );

        // Reverse arrival: the later-committing writer's event first.
        let mut c = Checker::new();
        c.process(&commit_write(2, ts(0, 0), ts(40, 0), 7, 200));
        c.process(&commit_write(1, ts(0, 0), ts(20, 0), 7, 100));
        assert_eq!(c.report().violation_count, 1);
        assert_eq!(
            c.report().violations[0].kind,
            ViolationKind::FirstCommitterWins
        );
    }

    #[test]
    fn serial_si_writers_do_not_trip_fcw() {
        let mut c = Checker::new();
        c.process(&commit_write(1, ts(0, 0), ts(20, 0), 7, 100));
        c.process(&commit_write(2, ts(20, 0), ts(40, 0), 7, 200));
        c.process(&commit_write(3, ts(40, 0), ts(60, 0), 7, 300));
        assert_eq!(c.report().violation_count, 0);
    }

    #[test]
    fn own_writes_must_be_visible() {
        let mut c = Checker::new();
        c.process(&reader(
            1,
            ts(0, 0),
            vec![
                Op::Write { key: 7, value: 50 },
                Op::Read { key: 7, value: 50 },  // ok
                Op::Read { key: 7, value: 999 }, // wrong
            ],
        ));
        let r = c.report();
        assert_eq!(r.violation_count, 1);
        assert_eq!(r.violations[0].kind, ViolationKind::OwnWrite);
    }

    #[test]
    fn dirty_read_of_aborted_write_detected() {
        let mut c = Checker::new();
        c.process(&TxnEvent {
            tid: 1,
            si: true,
            snapshot: ts(0, 0),
            commit: None,
            aborted: true,
            ops: vec![Op::Write { key: 7, value: 666 }],
        });
        c.process(&reader(2, ts(20, 0), vec![Op::Read { key: 7, value: 666 }]));
        let r = c.report();
        assert_eq!(r.violation_count, 1);
        assert_eq!(r.violations[0].kind, ViolationKind::DirtyRead);
    }

    #[test]
    fn pre_arm_reads_are_unverifiable_not_violations() {
        let mut c = Checker::new();
        // No commit knowledge for key 7 at all: observed value can't be
        // judged.
        c.process(&reader(1, ts(20, 0), vec![Op::Read { key: 7, value: 42 }]));
        // Knowledge exists but only above the snapshot.
        c.process(&commit_write(2, ts(20, 0), ts(40, 0), 9, 100));
        c.process(&reader(3, ts(20, 0), vec![Op::Read { key: 9, value: 7 }]));
        let r = c.report();
        assert_eq!(r.violation_count, 0, "{:?}", r.violations);
        assert_eq!(r.unverifiable, 2);
    }

    #[test]
    fn degraded_mode_downgrades_mismatches_but_not_fcw() {
        let mut c = Checker::new();
        c.mark_degraded(3);
        c.process(&commit_write(1, ts(0, 0), ts(20, 0), 7, 100));
        c.process(&reader(2, ts(20, 0), vec![Op::Read { key: 7, value: 999 }]));
        let r = c.report();
        assert_eq!(r.violation_count, 0);
        assert_eq!(r.unverifiable, 1);
        assert!(r.degraded);
        // FCW is positive evidence and survives degraded mode.
        c.process(&commit_write(3, ts(0, 0), ts(40, 0), 7, 200));
        assert_eq!(c.report().violation_count, 1);
    }

    #[test]
    fn prune_keeps_exactly_what_live_snapshots_can_see() {
        let mut c = Checker::new();
        for i in 1..=5u64 {
            c.process(&commit_write(
                i,
                ts(20 * (i - 1), 0),
                ts(20 * i, 0),
                7,
                i * 100,
            ));
        }
        c.prune(ts(60, 0));
        // Versions at 60 (newest <= watermark), 80, 100 survive.
        let ks = &c.keys[&7];
        assert_eq!(ks.versions.len(), 3);
        assert_eq!(ks.versions[0].ts, ts(60, 0));
        // A reader at the watermark still validates.
        c.process(&reader(9, ts(60, 0), vec![Op::Read { key: 7, value: 300 }]));
        assert_eq!(c.report().violation_count, 0);
        // Reads below the watermark degrade to unverifiable, never false
        // violations.
        c.process(&reader(
            10,
            ts(40, 0),
            vec![Op::Read { key: 7, value: 200 }],
        ));
        let r = c.report();
        assert_eq!(r.violation_count, 0);
        assert_eq!(r.unverifiable, 1);
        // Fully-pruned keys disappear.
        c.prune(ts(200, 0));
        assert_eq!(c.tracked_keys(), 1); // newest version is always kept
    }

    #[test]
    fn sentinel_thread_end_to_end() {
        let tap = EventTap::new(1024);
        let metrics = MetricsRegistry::new();
        let s = Sentinel::spawn(Arc::clone(&tap), metrics.clone());
        tap.push(commit_write(1, ts(0, 0), ts(20, 0), 7, 100));
        tap.push(reader(2, ts(20, 0), vec![Op::Read { key: 7, value: 100 }]));
        tap.push(reader(3, ts(20, 0), vec![Op::Read { key: 7, value: 42 }]));
        let r = s.stop();
        assert_eq!(r.events, 3);
        assert_eq!(r.violation_count, 1);
        assert_eq!(metrics.check.events.get(), 3);
        assert_eq!(metrics.check.violations_gauge.get(), 1);
    }
}
