//! Moving objects and the event stream they generate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::network::RoadNetwork;

/// A database operation emitted by the simulation. Coordinates are
/// integers so they map directly onto the paper's
/// `(Oid smallint, LocationX int, LocationY int)` schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// The object appeared on the map: one insert transaction.
    Insert { oid: u32, x: i32, y: i32 },
    /// The object reported a new position: one update transaction.
    Update { oid: u32, x: i32, y: i32 },
}

/// One workload event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub op: Op,
}

struct MovingObject {
    oid: u32,
    /// Route as node indices; `leg` is the edge currently being traversed
    /// (`route[leg] → route[leg+1]`), `progress` the distance covered on
    /// it.
    route: Vec<usize>,
    leg: usize,
    progress: f64,
    /// Per-object speed factor (vehicles vs trucks vs cyclists).
    speed_factor: f64,
    /// Simulated seconds between position reports.
    report_every: f64,
    inserted: bool,
}

impl MovingObject {
    fn position(&self, net: &RoadNetwork) -> (i32, i32) {
        if self.leg + 1 >= self.route.len() {
            let n = net.nodes[*self.route.last().unwrap()];
            return (n.x as i32, n.y as i32);
        }
        let a = net.nodes[self.route[self.leg]];
        let b = net.nodes[self.route[self.leg + 1]];
        let e = net
            .edge(self.route[self.leg], self.route[self.leg + 1])
            .expect("route follows edges");
        let f = (self.progress / e.length).clamp(0.0, 1.0);
        (
            (a.x + (b.x - a.x) * f) as i32,
            (a.y + (b.y - a.y) * f) as i32,
        )
    }

    fn at_destination(&self) -> bool {
        self.leg + 1 >= self.route.len()
    }

    /// Advance the object by `dt` simulated seconds.
    fn advance(&mut self, net: &RoadNetwork, dt: f64) {
        let mut remaining = dt;
        while remaining > 0.0 && !self.at_destination() {
            let e = net
                .edge(self.route[self.leg], self.route[self.leg + 1])
                .expect("route follows edges");
            let v = e.speed * self.speed_factor;
            let left_on_edge = e.length - self.progress;
            let t_edge = left_on_edge / v;
            if t_edge > remaining {
                self.progress += v * remaining;
                remaining = 0.0;
            } else {
                remaining -= t_edge;
                self.leg += 1;
                self.progress = 0.0;
            }
        }
    }
}

/// The workload generator: a road network plus a population of moving
/// objects. [`Generator::next_event`] yields an endless event stream
/// (objects reaching their destination are respawned on a new route, so
/// long experiment runs never starve); [`Generator::events_exact`] yields
/// the deterministic insert/update counts the paper's figures prescribe.
pub struct Generator {
    net: RoadNetwork,
    objects: Vec<MovingObject>,
    rng: StdRng,
    cursor: usize,
}

impl Generator {
    /// A generator over a 30×30 synthetic network with `num_objects`
    /// objects. Deterministic per seed.
    pub fn new(seed: u64, num_objects: u32) -> Generator {
        let net = RoadNetwork::grid(30, 30, 800.0, seed ^ 0x6E65_7477);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut objects = Vec::with_capacity(num_objects as usize);
        for oid in 0..num_objects {
            objects.push(Self::spawn(&net, &mut rng, oid));
        }
        Generator {
            net,
            objects,
            rng,
            cursor: 0,
        }
    }

    fn spawn(net: &RoadNetwork, rng: &mut StdRng, oid: u32) -> MovingObject {
        let route = loop {
            let src = rng.gen_range(0..net.len());
            let dst = rng.gen_range(0..net.len());
            if src == dst {
                continue;
            }
            if let Some(route) = net.shortest_path(src, dst) {
                if route.len() >= 2 {
                    break route;
                }
            }
        };
        MovingObject {
            oid,
            route,
            leg: 0,
            progress: 0.0,
            // Cyclists to trucks to cars: 0.3x .. 1.2x the road speed.
            speed_factor: rng.gen_range(0.3..1.2),
            // Variable report rates (the paper: "moving objects have
            // variable speeds, i.e., they submit update transactions at
            // different rates").
            report_every: rng.gen_range(5.0..30.0),
            inserted: false,
        }
    }

    /// Produce the next event. Round-robin over objects: first contact
    /// inserts, subsequent contacts advance the object and update; objects
    /// that arrive are re-routed (respawned) with the same oid.
    pub fn next_event(&mut self) -> Event {
        let i = self.cursor;
        self.cursor = (self.cursor + 1) % self.objects.len();
        let net = &self.net;
        let obj = &mut self.objects[i];
        if !obj.inserted {
            obj.inserted = true;
            let (x, y) = obj.position(net);
            return Event {
                op: Op::Insert { oid: obj.oid, x, y },
            };
        }
        obj.advance(net, obj.report_every);
        if obj.at_destination() {
            let oid = obj.oid;
            let mut fresh = Self::spawn(&self.net, &mut self.rng, oid);
            fresh.inserted = true;
            self.objects[i] = fresh;
        }
        let obj = &self.objects[i];
        let (x, y) = obj.position(&self.net);
        Event {
            op: Op::Update { oid: obj.oid, x, y },
        }
    }

    /// Deterministic schedule for the paper's figures: `objects` inserts
    /// followed by rounds of updates until every object has been updated
    /// exactly `updates_per_object` times (updates interleave round-robin,
    /// matching "when an object moves, it sends an update transaction").
    pub fn events_exact(seed: u64, objects: u32, updates_per_object: u32) -> Vec<Event> {
        let mut g = Generator::new(seed, objects);
        let mut out = Vec::with_capacity((objects * (1 + updates_per_object)) as usize);
        // Insert phase: first touch of each object.
        for _ in 0..objects {
            let e = g.next_event();
            debug_assert!(matches!(e.op, Op::Insert { .. }));
            out.push(e);
        }
        // Update rounds.
        for _ in 0..updates_per_object {
            for _ in 0..objects {
                let e = g.next_event();
                debug_assert!(matches!(e.op, Op::Update { .. }));
                out.push(e);
            }
        }
        out
    }
}
