//! Network-based moving-objects workload generator.
//!
//! A self-contained reimplementation of the *kind* of workload the paper
//! drives its experiments with (Brinkhoff's "Framework for Generating
//! Network-Based Moving Objects" on the Seattle road network): objects
//! appear on a road network, issue an **insert** transaction with their id
//! and location, then move along shortest-path routes at per-object
//! speeds, issuing an **update** transaction at every position report
//! until they reach their destination.
//!
//! The network here is synthetic (a perturbed grid with missing edges and
//! per-edge speed classes) — Figures 5 and 6 of the paper depend only on
//! the *transaction mix* (insert/update ratio, records per transaction),
//! not the geography, so this preserves the experimental behaviour. See
//! DESIGN.md §2.

pub mod network;
pub mod objects;
pub mod temporal;

pub use network::RoadNetwork;
pub use objects::{Event, Generator, Op};
pub use temporal::{temporal_history, TemporalOp};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Generator::new(42, 10);
        let mut b = Generator::new(42, 10);
        for _ in 0..100 {
            assert_eq!(a.next_event(), b.next_event());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Generator::new(42, 10);
        let mut c = Generator::new(43, 10);
        let ev_a: Vec<_> = (0..100).map(|_| a.next_event()).collect();
        let ev_c: Vec<_> = (0..100).map(|_| c.next_event()).collect();
        assert_ne!(ev_a, ev_c);
    }

    #[test]
    fn inserts_come_first_per_object() {
        let mut g = Generator::new(7, 25);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            match g.next_event().op {
                Op::Insert { oid, .. } => {
                    assert!(seen.insert(oid), "object {oid} inserted twice");
                }
                Op::Update { oid, .. } => {
                    assert!(seen.contains(&oid), "update before insert for {oid}");
                }
            }
        }
    }

    #[test]
    fn exact_schedule_counts() {
        let events = Generator::events_exact(11, 500, 63);
        assert_eq!(events.len(), 500 + 500 * 63);
        let inserts = events
            .iter()
            .filter(|e| matches!(e.op, Op::Insert { .. }))
            .count();
        assert_eq!(inserts, 500);
        let mut per_obj = std::collections::HashMap::new();
        for e in &events {
            if let Op::Update { oid, .. } = e.op {
                *per_obj.entry(oid).or_insert(0) += 1;
            }
        }
        assert_eq!(per_obj.len(), 500);
        assert!(per_obj.values().all(|&n| n == 63));
    }

    #[test]
    fn positions_move_continuously() {
        // Consecutive updates of one object should usually be nearby
        // (objects travel along edges, not teleport).
        let events = Generator::events_exact(3, 10, 50);
        let mut last: std::collections::HashMap<u32, (i32, i32)> = Default::default();
        let mut total_moves = 0u64;
        let mut big_jumps = 0u64;
        for e in &events {
            let (oid, x, y) = match e.op {
                Op::Insert { oid, x, y } | Op::Update { oid, x, y } => (oid, x, y),
            };
            if let Some((px, py)) = last.insert(oid, (x, y)) {
                total_moves += 1;
                let d2 = ((x - px) as i64).pow(2) + ((y - py) as i64).pow(2);
                if d2 > 2_000_000 {
                    big_jumps += 1;
                }
            }
        }
        assert!(total_moves > 0);
        assert!(
            big_jumps * 10 < total_moves,
            "too many teleports: {big_jumps}/{total_moves}"
        );
    }
}
