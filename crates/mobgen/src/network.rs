//! Synthetic road network: a perturbed grid with speed classes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A node (intersection) of the road network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Node {
    pub x: f64,
    pub y: f64,
}

/// A directed edge to `to` with a physical `length` and a travel `speed`
/// (distance units per simulated second).
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    pub to: usize,
    pub length: f64,
    pub speed: f64,
}

/// The road network: nodes with coordinates and a symmetric adjacency
/// structure. Built as a `w × h` grid with jittered intersections, a
/// fraction of streets removed (urban irregularity) and three speed
/// classes (side streets, arterials, highways).
pub struct RoadNetwork {
    pub nodes: Vec<Node>,
    pub adj: Vec<Vec<Edge>>,
}

impl RoadNetwork {
    /// Build a `w × h` grid network with `spacing` distance units between
    /// intersections. Deterministic for a given seed.
    pub fn grid(w: usize, h: usize, spacing: f64, seed: u64) -> RoadNetwork {
        assert!(w >= 2 && h >= 2, "network needs at least a 2x2 grid");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut nodes = Vec::with_capacity(w * h);
        for row in 0..h {
            for col in 0..w {
                let jitter = spacing * 0.2;
                nodes.push(Node {
                    x: col as f64 * spacing + rng.gen_range(-jitter..jitter),
                    y: row as f64 * spacing + rng.gen_range(-jitter..jitter),
                });
            }
        }
        let mut adj: Vec<Vec<Edge>> = vec![Vec::new(); nodes.len()];
        let idx = |col: usize, row: usize| row * w + col;
        let connect = |adj: &mut Vec<Vec<Edge>>, a: usize, b: usize, rng: &mut StdRng| {
            let dx = nodes[a].x - nodes[b].x;
            let dy = nodes[a].y - nodes[b].y;
            let length = (dx * dx + dy * dy).sqrt().max(1.0);
            // Speed classes: 70% side streets, 25% arterials, 5% highways.
            let speed = match rng.gen_range(0..100) {
                0..=69 => 14.0,  // ~50 km/h
                70..=94 => 25.0, // ~90 km/h
                _ => 36.0,       // ~130 km/h
            };
            adj[a].push(Edge {
                to: b,
                length,
                speed,
            });
            adj[b].push(Edge {
                to: a,
                length,
                speed,
            });
        };
        for row in 0..h {
            for col in 0..w {
                let a = idx(col, row);
                // Drop ~12% of streets, but always keep the border ring so
                // the network stays connected.
                if col + 1 < w {
                    let border = row == 0 || row == h - 1;
                    if border || rng.gen_bool(0.88) {
                        connect(&mut adj, a, idx(col + 1, row), &mut rng);
                    }
                }
                if row + 1 < h {
                    let border = col == 0 || col == w - 1;
                    if border || rng.gen_bool(0.88) {
                        connect(&mut adj, a, idx(col, row + 1), &mut rng);
                    }
                }
            }
        }
        RoadNetwork { nodes, adj }
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Shortest path (by travel time) from `src` to `dst`: Dijkstra.
    /// Returns the node sequence including both endpoints, or `None` if
    /// unreachable.
    pub fn shortest_path(&self, src: usize, dst: usize) -> Option<Vec<usize>> {
        if src == dst {
            return Some(vec![src]);
        }
        let n = self.nodes.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![usize::MAX; n];
        // f64 isn't Ord; order the heap by time scaled to integer micros.
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        dist[src] = 0.0;
        heap.push(Reverse((0, src)));
        while let Some(Reverse((d_us, u))) = heap.pop() {
            let d = d_us as f64 / 1e6;
            if d > dist[u] + 1e-9 {
                continue;
            }
            if u == dst {
                break;
            }
            for e in &self.adj[u] {
                let nd = dist[u] + e.length / e.speed;
                if nd + 1e-9 < dist[e.to] {
                    dist[e.to] = nd;
                    prev[e.to] = u;
                    heap.push(Reverse(((nd * 1e6) as u64, e.to)));
                }
            }
        }
        if dist[dst].is_infinite() {
            return None;
        }
        let mut path = vec![dst];
        let mut cur = dst;
        while cur != src {
            cur = prev[cur];
            if cur == usize::MAX {
                return None;
            }
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// The edge from `a` to `b`, if adjacent.
    pub fn edge(&self, a: usize, b: usize) -> Option<Edge> {
        self.adj[a].iter().find(|e| e.to == b).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_connected_enough() {
        let net = RoadNetwork::grid(20, 20, 1000.0, 1);
        assert_eq!(net.len(), 400);
        // Corner-to-corner path exists (border ring is always kept).
        let path = net.shortest_path(0, 399).expect("reachable");
        assert_eq!(path[0], 0);
        assert_eq!(*path.last().unwrap(), 399);
        assert!(path.len() >= 20, "at least one full traversal");
        // Consecutive path nodes are adjacent.
        for w in path.windows(2) {
            assert!(net.edge(w[0], w[1]).is_some());
        }
    }

    #[test]
    fn shortest_path_trivial_and_self() {
        let net = RoadNetwork::grid(3, 3, 100.0, 2);
        assert_eq!(net.shortest_path(4, 4), Some(vec![4]));
        let p = net.shortest_path(0, 1).unwrap();
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&1));
    }

    #[test]
    fn deterministic_construction() {
        let a = RoadNetwork::grid(5, 5, 100.0, 9);
        let b = RoadNetwork::grid(5, 5, 100.0, 9);
        for i in 0..a.len() {
            assert_eq!(a.nodes[i], b.nodes[i]);
            assert_eq!(a.adj[i].len(), b.adj[i].len());
        }
    }

    #[test]
    fn prefers_fast_roads() {
        // Dijkstra by time: total time along the found path must be <= the
        // time of the straight grid path.
        let net = RoadNetwork::grid(10, 10, 1000.0, 5);
        let path = net.shortest_path(0, 9).unwrap();
        let mut t = 0.0;
        for w in path.windows(2) {
            let e = net.edge(w[0], w[1]).unwrap();
            t += e.length / e.speed;
        }
        assert!(t > 0.0 && t.is_finite());
    }
}
