//! Deep-history workload for the temporal query subsystem.
//!
//! The base moving-objects stream ([`crate::Generator`]) only inserts and
//! updates — fine for Figures 5/6, but `VERSIONS BETWEEN` / `DIFF`
//! correctness hinges on delete tombstones and keys that die and come
//! back. Here objects also *leave the map* (one delete transaction) and
//! later reappear (a fresh insert under the same oid), so a fixed seed
//! yields a history with multi-update keys, deletes, and re-inserts in
//! one deterministic stream.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One operation of a temporal history. Unlike [`crate::Op`] this
/// includes deletion, so replaying the stream exercises tombstones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemporalOp {
    Insert { oid: u32, x: i32, y: i32 },
    Update { oid: u32, x: i32, y: i32 },
    Delete { oid: u32 },
}

impl TemporalOp {
    pub fn oid(&self) -> u32 {
        match *self {
            TemporalOp::Insert { oid, .. }
            | TemporalOp::Update { oid, .. }
            | TemporalOp::Delete { oid } => oid,
        }
    }
}

/// Generate `steps` operations over `objects` oids, deterministic per
/// seed. Invariants: the first operation for an oid is an insert; deletes
/// only target live oids; a deleted oid can reappear via a later insert.
/// Roughly one in seven operations on a live object is a departure, so
/// any history longer than a few dozen steps contains deletes and
/// re-inserts.
pub fn temporal_history(seed: u64, objects: u32, steps: u32) -> Vec<TemporalOp> {
    assert!(objects > 0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7465_6D70);
    let mut live = vec![false; objects as usize];
    let mut out = Vec::with_capacity(steps as usize);
    for _ in 0..steps {
        let oid = rng.gen_range(0..objects);
        let (x, y) = (rng.gen_range(0..24_000), rng.gen_range(0..24_000));
        let op = if !live[oid as usize] {
            live[oid as usize] = true;
            TemporalOp::Insert { oid, x, y }
        } else if rng.gen_range(0..7) == 0 {
            live[oid as usize] = false;
            TemporalOp::Delete { oid }
        } else {
            TemporalOp::Update { oid, x, y }
        };
        out.push(op);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_well_formed() {
        let a = temporal_history(9, 8, 400);
        assert_eq!(a, temporal_history(9, 8, 400));
        let mut live = std::collections::HashSet::new();
        for op in &a {
            match *op {
                TemporalOp::Insert { oid, .. } => assert!(live.insert(oid)),
                TemporalOp::Update { oid, .. } => assert!(live.contains(&oid)),
                TemporalOp::Delete { oid } => assert!(live.remove(&oid)),
            }
        }
    }

    #[test]
    fn history_contains_deletes_and_reinserts() {
        let ops = temporal_history(9, 8, 400);
        let deletes = ops
            .iter()
            .filter(|o| matches!(o, TemporalOp::Delete { .. }))
            .count();
        assert!(deletes > 5, "only {deletes} deletes");
        // A re-insert = an insert for an oid that was inserted before.
        let mut inserted = std::collections::HashMap::new();
        let mut reinserts = 0;
        for op in &ops {
            if let TemporalOp::Insert { oid, .. } = op {
                *inserted.entry(*oid).or_insert(0) += 1;
                if inserted[oid] > 1 {
                    reinserts += 1;
                }
            }
        }
        assert!(reinserts > 0, "no key ever came back");
        // Multi-update keys: some oid updated more than once.
        let mut updates = std::collections::HashMap::new();
        for op in &ops {
            if let TemporalOp::Update { oid, .. } = op {
                *updates.entry(*oid).or_insert(0) += 1;
            }
        }
        assert!(updates.values().any(|&n| n > 3));
    }
}
