//! Bucket-boundary and concurrency tests for the metrics primitives.

use std::sync::Arc;
use std::thread;

use immortaldb_obs::{Histogram, MetricsRegistry, HISTOGRAM_BUCKETS};

#[test]
fn bucket_boundaries_are_exact_powers_of_two() {
    // Value → expected bucket: 0→0, 1→1, and v in [2^(i-1), 2^i) → i.
    let cases: &[(u64, usize)] = &[
        (0, 0),
        (1, 1),
        (2, 2),
        (3, 2),
        (4, 3),
        (7, 3),
        (8, 4),
        (1023, 10),
        (1024, 11),
        (u64::MAX, 64),
    ];
    for &(v, want) in cases {
        assert_eq!(
            Histogram::bucket_index(v),
            want,
            "value {v} should land in bucket {want}"
        );
        let h = Histogram::new();
        h.observe(v);
        assert_eq!(h.bucket_count(want), 1);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), v);
        assert_eq!(h.max(), v);
    }
}

#[test]
fn bucket_upper_bounds() {
    assert_eq!(Histogram::bucket_upper_bound(0), Some(1));
    assert_eq!(Histogram::bucket_upper_bound(1), Some(2));
    assert_eq!(Histogram::bucket_upper_bound(10), Some(1024));
    assert_eq!(Histogram::bucket_upper_bound(HISTOGRAM_BUCKETS - 1), None);
    // Every value in a bucket is below its bound and at or above the
    // previous bound.
    for v in [1u64, 2, 3, 5, 100, 4096, 1 << 40] {
        let i = Histogram::bucket_index(v);
        assert!(v < Histogram::bucket_upper_bound(i).unwrap_or(u64::MAX));
        if i > 1 {
            assert!(v >= Histogram::bucket_upper_bound(i - 1).unwrap());
        }
    }
}

#[test]
fn concurrent_increments_lose_nothing() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let reg = Arc::new(MetricsRegistry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    reg.buffer.fetches.inc();
                    reg.wal.bytes.add(3);
                    reg.tree.version_chain_len.observe(t as u64 * 7 + i % 9);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(reg.buffer.fetches.get(), total);
    assert_eq!(reg.wal.bytes.get(), total * 3);
    assert_eq!(reg.tree.version_chain_len.count(), total);
    // Bucket totals must also add up: relaxed ordering may interleave,
    // but no increment may be lost.
    let s = reg.tree.version_chain_len.snapshot();
    let bucket_sum: u64 = s.buckets.iter().map(|(_, n)| n).sum();
    assert_eq!(bucket_sum, total);
}

#[test]
fn snapshot_is_stable_under_concurrent_writes() {
    let reg = Arc::new(MetricsRegistry::new());
    let writer = {
        let reg = Arc::clone(&reg);
        thread::spawn(move || {
            for _ in 0..50_000 {
                reg.locks.acquired_x.inc();
            }
        })
    };
    // Snapshots taken mid-flight must be monotonic for a counter.
    let mut last = 0;
    for _ in 0..20 {
        let now = reg.snapshot().get("locks.acquired.x").unwrap();
        assert!(now >= last);
        last = now;
    }
    writer.join().unwrap();
    assert_eq!(reg.snapshot().get("locks.acquired.x"), Some(50_000));
}
