//! Point-in-time snapshots of the metric tree, with stable names and
//! text / JSON rendering. JSON is hand-rolled — the crate is
//! dependency-free and the value space is only integers, floats and
//! strings.

use crate::MetricsRegistry;

/// Frozen copy of one [`Histogram`](crate::Histogram).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    /// Non-empty buckets as `(exclusive_upper_bound, count)`, ascending.
    /// The open-ended last bucket reports `u64::MAX` as its bound.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Point-in-time copy of every instrument in a registry.
///
/// Scalar names are `<layer>.<metric>` (`buffer.hits`, `ts.stamps.read`);
/// histograms live under their own name (`wal.fsync_ns`) and flatten to
/// `.count` / `.sum` / `.max` / `.mean` scalars in [`entries`].
///
/// [`entries`]: MetricsSnapshot::entries
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub scalars: Vec<(String, u64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Build a snapshot from a live registry. Reads are relaxed, so a
/// snapshot taken concurrently with updates is per-instrument atomic
/// but not a consistent cut across instruments.
pub fn take(reg: &MetricsRegistry) -> MetricsSnapshot {
    let m: &crate::Metrics = reg;
    let scalars = vec![
        ("buffer.fetches".into(), m.buffer.fetches.get()),
        ("buffer.hits".into(), m.buffer.hits.get()),
        ("buffer.misses".into(), m.buffer.misses.get()),
        ("buffer.evictions".into(), m.buffer.evictions.get()),
        ("buffer.flushes".into(), m.buffer.flushes.get()),
        ("buffer.flush_errors".into(), m.buffer.flush_errors.get()),
        (
            "buffer.shard_conflicts".into(),
            m.buffer.shard_conflicts.get(),
        ),
        (
            "buffer.singleflight_waits".into(),
            m.buffer.singleflight_waits.get(),
        ),
        (
            "latch.optimistic_reads".into(),
            m.latch.optimistic_reads.get(),
        ),
        (
            "latch.optimistic_retries".into(),
            m.latch.optimistic_retries.get(),
        ),
        (
            "latch.pessimistic_fallbacks".into(),
            m.latch.pessimistic_fallbacks.get(),
        ),
        ("disk.reads".into(), m.disk.reads.get()),
        ("disk.writes".into(), m.disk.writes.get()),
        ("wal.appends".into(), m.wal.appends.get()),
        ("wal.bytes".into(), m.wal.bytes.get()),
        ("wal.fsyncs".into(), m.wal.fsyncs.get()),
        ("wal.group_commits".into(), m.wal.group_commits.get()),
        ("wal.end_lsn".into(), m.wal.end_lsn.get()),
        ("wal.durable_lsn".into(), m.wal.durable_lsn.get()),
        ("recovery.analyze_us".into(), m.recovery.analyze_us.get()),
        ("recovery.redo_us".into(), m.recovery.redo_us.get()),
        ("recovery.undo_us".into(), m.recovery.undo_us.get()),
        (
            "recovery.records_replayed".into(),
            m.recovery.records_replayed.get(),
        ),
        (
            "recovery.losers_rolled_back".into(),
            m.recovery.losers_rolled_back.get(),
        ),
        ("recovery.checkpoints".into(), m.recovery.checkpoints.get()),
        (
            "recovery.crash_recoveries".into(),
            m.recovery.crash_recoveries.get(),
        ),
        (
            "recovery.versions_restamped".into(),
            m.recovery.versions_restamped.get(),
        ),
        (
            "recovery.torn_pages_repaired".into(),
            m.recovery.torn_pages_repaired.get(),
        ),
        ("locks.acquired.is".into(), m.locks.acquired_is.get()),
        ("locks.acquired.ix".into(), m.locks.acquired_ix.get()),
        ("locks.acquired.s".into(), m.locks.acquired_s.get()),
        ("locks.acquired.x".into(), m.locks.acquired_x.get()),
        ("locks.waits".into(), m.locks.waits.get()),
        ("locks.deadlocks".into(), m.locks.deadlocks.get()),
        ("locks.timeouts".into(), m.locks.timeouts.get()),
        (
            "locks.shard_conflicts".into(),
            m.locks.shard_conflicts.get(),
        ),
        ("ts.vtt_hits".into(), m.ts.vtt_hits.get()),
        ("ts.vtt_misses".into(), m.ts.vtt_misses.get()),
        ("ts.ptt_lookups".into(), m.ts.ptt_lookups.get()),
        ("ts.ptt_inserts".into(), m.ts.ptt_inserts.get()),
        ("ts.ptt_gc_deleted".into(), m.ts.ptt_gc_deleted.get()),
        ("ts.stamps.read".into(), m.ts.stamps_read.get()),
        ("ts.stamps.update".into(), m.ts.stamps_update.get()),
        ("ts.stamps.flush".into(), m.ts.stamps_flush.get()),
        ("ts.stamps.time_split".into(), m.ts.stamps_time_split.get()),
        ("ts.stamps.vacuum".into(), m.ts.stamps_vacuum.get()),
        ("ts.stamps.eager".into(), m.ts.stamps_eager.get()),
        ("ts.stamps.total".into(), m.ts.stamps_total()),
        ("tree.time_splits".into(), m.tree.time_splits.get()),
        ("tree.key_splits".into(), m.tree.key_splits.get()),
        ("tree.asof_hops".into(), m.tree.asof_hops.get()),
        ("version.delta_folds".into(), m.version.delta_folds.get()),
        (
            "version.deltas_written".into(),
            m.version.deltas_written.get(),
        ),
        (
            "version.anchors_written".into(),
            m.version.anchors_written.get(),
        ),
        (
            "version.bytes_per_version".into(),
            m.version.bytes_per_version.get(),
        ),
        ("compaction.runs".into(), m.compaction.runs.get()),
        (
            "compaction.pages_rewritten".into(),
            m.compaction.pages_rewritten.get(),
        ),
        (
            "compaction.pages_freed".into(),
            m.compaction.pages_freed.get(),
        ),
        (
            "compaction.bytes_reclaimed".into(),
            m.compaction.bytes_reclaimed.get(),
        ),
        ("faults.torn_writes".into(), m.faults.torn_writes.get()),
        ("faults.fsync_errors".into(), m.faults.fsync_errors.get()),
        ("faults.read_errors".into(), m.faults.read_errors.get()),
        ("faults.crashes".into(), m.faults.crashes.get()),
        (
            "server.connections.accepted".into(),
            m.server.connections_accepted.get(),
        ),
        (
            "server.connections.rejected".into(),
            m.server.connections_rejected.get(),
        ),
        (
            "server.connections.closed".into(),
            m.server.connections_closed.get(),
        ),
        (
            "server.shed_connections".into(),
            m.server.shed_connections.get(),
        ),
        ("server.shed_requests".into(), m.server.shed_requests.get()),
        (
            "server.open_connections".into(),
            m.server.open_connections.get(),
        ),
        (
            "server.active_sessions".into(),
            m.server.active_sessions.get(),
        ),
        ("server.requests".into(), m.server.requests.get()),
        ("server.errors".into(), m.server.errors.get()),
        (
            "server.idle_rollbacks".into(),
            m.server.idle_rollbacks.get(),
        ),
        ("repl.batches_shipped".into(), m.repl.batches_shipped.get()),
        ("repl.bytes_shipped".into(), m.repl.bytes_shipped.get()),
        ("repl.batches_applied".into(), m.repl.batches_applied.get()),
        ("repl.records_applied".into(), m.repl.records_applied.get()),
        ("repl.reconnects".into(), m.repl.reconnects.get()),
        ("repl.horizon_ms".into(), m.repl.horizon_ms.get()),
        ("repl.applied_lsn".into(), m.repl.applied_lsn.get()),
        (
            "tsb.range_scan_pages".into(),
            m.temporal.range_scan_pages.get(),
        ),
        (
            "temporal.versions_returned".into(),
            m.temporal.versions_returned.get(),
        ),
        ("temporal.diff_rows".into(), m.temporal.diff_rows.get()),
        ("catalog.snapshots".into(), m.temporal.snapshots.get()),
        ("check.events".into(), m.check.events.get()),
        ("check.dropped".into(), m.check.dropped_gauge.get()),
        (
            "check.reads_checked".into(),
            m.check.reads_checked_gauge.get(),
        ),
        (
            "check.commits_checked".into(),
            m.check.commits_checked_gauge.get(),
        ),
        ("check.violations".into(), m.check.violations_gauge.get()),
        (
            "check.unverifiable".into(),
            m.check.unverifiable_gauge.get(),
        ),
        ("check.backlog".into(), m.check.backlog.get()),
    ];
    let histograms = vec![
        ("wal.fsync_ns".into(), m.wal.fsync_ns.snapshot()),
        ("wal.batch_size".into(), m.wal.batch_size.snapshot()),
        (
            "wal.leader_waits_ns".into(),
            m.wal.leader_waits_ns.snapshot(),
        ),
        ("locks.wait_ns".into(), m.locks.wait_ns.snapshot()),
        (
            "tree.version_chain_len".into(),
            m.tree.version_chain_len.snapshot(),
        ),
        ("server.request_ns".into(), m.server.request_ns.snapshot()),
        ("server.commit_ns".into(), m.server.commit_ns.snapshot()),
    ];
    MetricsSnapshot {
        scalars,
        histograms,
    }
}

impl MetricsSnapshot {
    /// Look up a scalar by its stable name. Histogram aggregates are
    /// addressable as `<name>.count` / `.sum` / `.max`.
    pub fn get(&self, name: &str) -> Option<u64> {
        if let Some(v) = self
            .scalars
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
        {
            return Some(v);
        }
        for (hname, h) in &self.histograms {
            if let Some(rest) = name.strip_prefix(hname.as_str()) {
                match rest {
                    ".count" => return Some(h.count),
                    ".sum" => return Some(h.sum),
                    ".max" => return Some(h.max),
                    _ => {}
                }
            }
        }
        None
    }

    /// Buffer hit rate in `[0, 1]`; 0 when no fetches happened.
    pub fn buffer_hit_rate(&self) -> f64 {
        let fetches = self.get("buffer.fetches").unwrap_or(0);
        if fetches == 0 {
            0.0
        } else {
            self.get("buffer.hits").unwrap_or(0) as f64 / fetches as f64
        }
    }

    /// All metrics flattened to `(name, value)` rows — what `SHOW STATS`
    /// returns. Histograms contribute `.count`/`.sum`/`.max`/`.mean_ns`
    /// rows; the derived `buffer.hit_rate_pct` is scaled to an integer
    /// percentage so every row stays `u64`.
    pub fn entries(&self) -> Vec<(String, u64)> {
        let mut rows = self.scalars.clone();
        rows.push((
            "buffer.hit_rate_pct".into(),
            (self.buffer_hit_rate() * 100.0).round() as u64,
        ));
        for (name, h) in &self.histograms {
            rows.push((format!("{name}.count"), h.count));
            rows.push((format!("{name}.sum"), h.sum));
            rows.push((format!("{name}.max"), h.max));
            rows.push((format!("{name}.mean"), h.mean().round() as u64));
        }
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    /// Aligned `name value` lines, sorted by name.
    pub fn to_text(&self) -> String {
        let rows = self.entries();
        let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in rows {
            out.push_str(&format!("{name:<width$}  {value}\n"));
        }
        out
    }

    /// JSON object: scalars as integers, `buffer.hit_rate` as a float,
    /// histograms as objects with a bucket array.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (name, value) in &self.scalars {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{name}\":{value}"));
        }
        out.push_str(&format!(
            ",\"buffer.hit_rate\":{:.6}",
            self.buffer_hit_rate()
        ));
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                ",\"{name}\":{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{:.1},\"buckets\":[",
                h.count,
                h.sum,
                h.max,
                h.mean()
            ));
            for (i, (bound, n)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{bound},{n}]"));
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::MetricsRegistry;

    #[test]
    fn snapshot_names_and_lookup() {
        let r = MetricsRegistry::new();
        r.buffer.fetches.add(10);
        r.buffer.hits.add(9);
        r.buffer.misses.inc();
        r.wal.fsync_ns.observe(1000);
        r.faults.torn_writes.inc();
        r.recovery.versions_restamped.add(3);
        r.server.connections_accepted.add(2);
        r.server.request_ns.observe(500);
        let s = r.snapshot();
        assert_eq!(s.get("buffer.fetches"), Some(10));
        assert_eq!(s.get("faults.torn_writes"), Some(1));
        assert_eq!(s.get("server.connections.accepted"), Some(2));
        assert_eq!(s.get("server.connections.rejected"), Some(0));
        assert_eq!(s.get("server.request_ns.count"), Some(1));
        assert_eq!(s.get("recovery.versions_restamped"), Some(3));
        assert_eq!(s.get("recovery.crash_recoveries"), Some(0));
        assert_eq!(s.get("buffer.flush_errors"), Some(0));
        assert_eq!(s.get("wal.fsync_ns.count"), Some(1));
        assert_eq!(s.get("wal.fsync_ns.sum"), Some(1000));
        assert_eq!(s.get("no.such.metric"), None);
        assert!((s.buffer_hit_rate() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn wal_and_repl_gauges_have_stable_names() {
        let r = MetricsRegistry::new();
        r.wal.end_lsn.set(4096);
        r.wal.durable_lsn.set(2048);
        r.repl.batches_shipped.add(3);
        r.repl.horizon_ms.set(12_345);
        r.repl.applied_lsn.set(512);
        let s = r.snapshot();
        assert_eq!(s.get("wal.end_lsn"), Some(4096));
        assert_eq!(s.get("wal.durable_lsn"), Some(2048));
        assert_eq!(s.get("repl.batches_shipped"), Some(3));
        assert_eq!(s.get("repl.bytes_shipped"), Some(0));
        assert_eq!(s.get("repl.horizon_ms"), Some(12_345));
        assert_eq!(s.get("repl.applied_lsn"), Some(512));
        assert!(s.to_json().contains("\"repl.reconnects\":0"));
    }

    #[test]
    fn temporal_metrics_have_stable_names() {
        let r = MetricsRegistry::new();
        r.temporal.range_scan_pages.add(12);
        r.temporal.versions_returned.add(40);
        r.temporal.diff_rows.add(7);
        r.temporal.snapshots.set(2);
        let s = r.snapshot();
        assert_eq!(s.get("tsb.range_scan_pages"), Some(12));
        assert_eq!(s.get("temporal.versions_returned"), Some(40));
        assert_eq!(s.get("temporal.diff_rows"), Some(7));
        assert_eq!(s.get("catalog.snapshots"), Some(2));
    }

    #[test]
    fn version_and_compaction_metrics_have_stable_names() {
        let r = MetricsRegistry::new();
        r.version.delta_folds.add(15);
        r.version.deltas_written.add(9);
        r.version.anchors_written.add(3);
        r.version.bytes_per_version.set(2750);
        r.compaction.runs.inc();
        r.compaction.pages_rewritten.add(6);
        r.compaction.pages_freed.add(2);
        r.compaction.bytes_reclaimed.add(4096);
        r.locks.shard_conflicts.add(5);
        let s = r.snapshot();
        assert_eq!(s.get("version.delta_folds"), Some(15));
        assert_eq!(s.get("version.deltas_written"), Some(9));
        assert_eq!(s.get("version.anchors_written"), Some(3));
        assert_eq!(s.get("version.bytes_per_version"), Some(2750));
        assert_eq!(s.get("compaction.runs"), Some(1));
        assert_eq!(s.get("compaction.pages_rewritten"), Some(6));
        assert_eq!(s.get("compaction.pages_freed"), Some(2));
        assert_eq!(s.get("compaction.bytes_reclaimed"), Some(4096));
        assert_eq!(s.get("locks.shard_conflicts"), Some(5));
    }

    #[test]
    fn latch_and_disk_metrics_have_stable_names() {
        let r = MetricsRegistry::new();
        r.buffer.shard_conflicts.add(4);
        r.buffer.singleflight_waits.add(3);
        r.latch.optimistic_reads.add(100);
        r.latch.optimistic_retries.add(5);
        r.latch.pessimistic_fallbacks.inc();
        r.disk.reads.add(8);
        r.disk.writes.add(2);
        let s = r.snapshot();
        assert_eq!(s.get("buffer.shard_conflicts"), Some(4));
        assert_eq!(s.get("buffer.singleflight_waits"), Some(3));
        assert_eq!(s.get("latch.optimistic_reads"), Some(100));
        assert_eq!(s.get("latch.optimistic_retries"), Some(5));
        assert_eq!(s.get("latch.pessimistic_fallbacks"), Some(1));
        assert_eq!(s.get("disk.reads"), Some(8));
        assert_eq!(s.get("disk.writes"), Some(2));
    }

    #[test]
    fn check_and_shed_metrics_have_stable_names() {
        let r = MetricsRegistry::new();
        r.server.shed_connections.add(4);
        r.server.shed_requests.add(9);
        r.server.open_connections.set(128);
        r.check.events.add(1000);
        r.check.violations_gauge.set(1);
        r.check.reads_checked_gauge.set(800);
        r.check.commits_checked_gauge.set(150);
        r.check.unverifiable_gauge.set(3);
        r.check.dropped_gauge.set(2);
        r.check.backlog.set(17);
        let s = r.snapshot();
        assert_eq!(s.get("server.shed_connections"), Some(4));
        assert_eq!(s.get("server.shed_requests"), Some(9));
        assert_eq!(s.get("server.open_connections"), Some(128));
        assert_eq!(s.get("check.events"), Some(1000));
        assert_eq!(s.get("check.violations"), Some(1));
        assert_eq!(s.get("check.reads_checked"), Some(800));
        assert_eq!(s.get("check.commits_checked"), Some(150));
        assert_eq!(s.get("check.unverifiable"), Some(3));
        assert_eq!(s.get("check.dropped"), Some(2));
        assert_eq!(s.get("check.backlog"), Some(17));
    }

    #[test]
    fn text_and_json_render() {
        let r = MetricsRegistry::new();
        r.locks.acquired_x.add(3);
        r.locks.wait_ns.observe(5);
        let s = r.snapshot();
        let text = s.to_text();
        assert!(text.contains("locks.acquired.x"));
        let json = s.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"locks.acquired.x\":3"));
        assert!(json.contains("\"locks.wait_ns\":{\"count\":1"));
        assert!(json.contains("\"buckets\":[[8,1]]"));
    }
}
