//! Engine-wide observability for Immortal DB.
//!
//! A zero-dependency metrics subsystem: every instrument is a relaxed
//! atomic, so recording on hot paths (buffer fetches, WAL appends, lock
//! grants) costs one uncontended `fetch_add` and never takes a lock.
//!
//! * [`Counter`] — monotonically increasing `u64`.
//! * [`Gauge`] — last-written `u64` (pass durations, sizes).
//! * [`Histogram`] — fixed power-of-two buckets with count/sum/max;
//!   [`Histogram::start_timer`] returns a guard that records elapsed
//!   nanoseconds on drop.
//! * [`Metrics`] — the typed tree of every instrument in the engine,
//!   grouped by layer (buffer / wal / recovery / locks / ts / tree).
//! * [`MetricsRegistry`] — a cheaply cloneable `Arc<Metrics>` handle that
//!   is threaded through `Database` construction so every layer records
//!   into one shared registry.
//! * [`MetricsSnapshot`] — a point-in-time copy with stable metric names,
//!   renderable as aligned text (`SHOW STATS`) or JSON (bench output).
//!
//! Metric names are a stable public interface: `<layer>.<metric>`, e.g.
//! `buffer.hits`, `wal.fsync_ns.count`, `ts.stamps.flush`. Renaming one
//! is a breaking change for dashboards and bench tooling.

pub mod snapshot;

pub use snapshot::{HistogramSnapshot, MetricsSnapshot};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

/// Monotonically increasing counter. All operations are `Relaxed`: we
/// want per-event cheapness, not cross-metric ordering — snapshots are
/// advisory, never used for synchronization.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-written value (durations of one-shot passes, current sizes).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 holds zero values, bucket `i`
/// (1 ≤ i ≤ 64) holds values in `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Fixed-bucket power-of-two histogram. A recorded value `v` lands in
/// bucket `64 - v.leading_zeros()`, so bucket boundaries are exact
/// powers of two and `observe` is branch-light and allocation-free.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            buckets: [(); HISTOGRAM_BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index for a value: 0 for 0, else `64 - leading_zeros`.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Exclusive upper bound of bucket `i` (`None` for the last bucket,
    /// whose bound would overflow u64).
    pub fn bucket_upper_bound(i: usize) -> Option<u64> {
        if i >= HISTOGRAM_BUCKETS - 1 {
            None
        } else {
            Some(1u64 << i)
        }
    }

    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Start a timer; elapsed nanoseconds are recorded when the returned
    /// guard drops.
    #[inline]
    pub fn start_timer(&self) -> HistogramTimer<'_> {
        HistogramTimer {
            hist: self,
            start: Instant::now(),
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            buckets: (0..HISTOGRAM_BUCKETS)
                .filter_map(|i| {
                    let n = self.bucket_count(i);
                    if n == 0 {
                        None
                    } else {
                        Some((Self::bucket_upper_bound(i).unwrap_or(u64::MAX), n))
                    }
                })
                .collect(),
        }
    }
}

/// RAII timer for a [`Histogram`]; records elapsed ns on drop.
pub struct HistogramTimer<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl HistogramTimer<'_> {
    /// Stop explicitly (equivalent to dropping the guard).
    pub fn stop(self) {}
}

impl Drop for HistogramTimer<'_> {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos();
        self.hist.observe(ns.min(u64::MAX as u128) as u64);
    }
}

// ---------------------------------------------------------------------
// The engine's instrument tree
// ---------------------------------------------------------------------

/// Buffer pool instruments.
#[derive(Debug, Default)]
pub struct BufferMetrics {
    /// Page fetches through the pool (hits + misses).
    pub fetches: Counter,
    /// Fetches satisfied from a resident frame.
    pub hits: Counter,
    /// Fetches that had to read the page from disk.
    pub misses: Counter,
    /// Frames reclaimed by the eviction clock.
    pub evictions: Counter,
    /// Dirty pages written back to disk.
    pub flushes: Counter,
    /// Write-backs that failed (WAL flush or page write error); the frame
    /// stays dirty and cached.
    pub flush_errors: Counter,
    /// Shard-table lock acquisitions that found the shard mutex already
    /// held (a `try_lock` failed and the caller had to block).
    pub shard_conflicts: Counter,
    /// Fetch misses that piggybacked on another thread's in-flight disk
    /// read for the same page instead of issuing their own.
    pub singleflight_waits: Counter,
}

/// Page-latch instruments (optimistic version-counter reads on the
/// B+tree / TSB-tree read paths).
#[derive(Debug, Default)]
pub struct LatchMetrics {
    /// Page reads served by the optimistic (latch-free) protocol: the
    /// version was validated after the copy with no writer interleaved.
    pub optimistic_reads: Counter,
    /// Optimistic read attempts invalidated by a concurrent writer
    /// (version moved or was odd) and retried.
    pub optimistic_retries: Counter,
    /// Reads that exhausted the retry bound and fell back to the
    /// pessimistic shared latch.
    pub pessimistic_fallbacks: Counter,
}

/// Disk-manager instruments (physical page I/O under the buffer pool).
#[derive(Debug, Default)]
pub struct DiskMetrics {
    /// Page reads issued to the VFS (buffer-pool misses after
    /// singleflight collapsing).
    pub reads: Counter,
    /// Page writes issued to the VFS.
    pub writes: Counter,
}

/// Write-ahead-log instruments.
#[derive(Debug, Default)]
pub struct WalMetrics {
    /// Log records appended.
    pub appends: Counter,
    /// Payload bytes appended (record bodies incl. headers).
    pub bytes: Counter,
    /// `fsync` / `sync_data` calls issued.
    pub fsyncs: Counter,
    /// Latency of each fsync, in nanoseconds.
    pub fsync_ns: Histogram,
    /// Group-commit batches synced (one leader fsync each).
    pub group_commits: Counter,
    /// Committers covered per group-commit batch.
    pub batch_size: Histogram,
    /// Time a group-commit leader spent gathering stragglers, in
    /// nanoseconds (only recorded when `max_wait` > 0).
    pub leader_waits_ns: Histogram,
    /// End of log: the LSN one past the last appended record.
    pub end_lsn: Gauge,
    /// Highest LSN known fsynced through the group-commit path.
    pub durable_lsn: Gauge,
}

/// WAL-shipping / replication instruments. On a primary the `shipped`
/// side counts per subscriber; on a replica the `applied` side tracks
/// the continuous-redo loop and the horizon gauges expose lag.
#[derive(Debug, Default)]
pub struct ReplMetrics {
    /// WAL_BATCH frames shipped to subscribers (primary side).
    pub batches_shipped: Counter,
    /// Raw log bytes shipped (primary side).
    pub bytes_shipped: Counter,
    /// WAL_BATCH frames received and fully applied (replica side).
    pub batches_applied: Counter,
    /// Log records replayed by the continuous-redo loop (replica side).
    pub records_applied: Counter,
    /// Reconnect attempts after a broken primary connection.
    pub reconnects: Counter,
    /// Replication horizon: newest primary commit time (ms) known safe
    /// to read on this replica.
    pub horizon_ms: Gauge,
    /// End of the locally applied log prefix (replica side).
    pub applied_lsn: Gauge,
}

/// Restart-recovery instruments (set once per `Database::open`).
#[derive(Debug, Default)]
pub struct RecoveryMetrics {
    /// Duration of the analysis pass, microseconds.
    pub analyze_us: Gauge,
    /// Duration of the redo pass, microseconds.
    pub redo_us: Gauge,
    /// Duration of the undo pass, microseconds.
    pub undo_us: Gauge,
    /// Log records replayed during redo.
    pub records_replayed: Counter,
    /// Loser transactions rolled back during undo.
    pub losers_rolled_back: Counter,
    /// Checkpoints taken.
    pub checkpoints: Counter,
    /// Restarts that actually recovered work (replayed records or rolled
    /// back losers) rather than finding a clean shutdown.
    pub crash_recoveries: Counter,
    /// Versions that lost their timestamp in a crash (flushed TID-marked)
    /// and were re-stamped from the persisted timestamp table afterwards.
    pub versions_restamped: Counter,
    /// Pages whose on-disk image failed CRC verification during redo and
    /// were rebuilt from a logged full-page image.
    pub torn_pages_repaired: Counter,
}

/// Injected-fault instruments (populated by the chaos crate's fault VFS;
/// always zero in production).
#[derive(Debug, Default)]
pub struct FaultMetrics {
    /// Page/WAL writes deliberately torn (partial write then crash).
    pub torn_writes: Counter,
    /// `fsync` calls failed by injection.
    pub fsync_errors: Counter,
    /// Reads failed by injection (transient).
    pub read_errors: Counter,
    /// Simulated crash cut-points hit.
    pub crashes: Counter,
}

/// Multi-granularity lock-manager instruments.
#[derive(Debug, Default)]
pub struct LockMetrics {
    /// Grants by mode.
    pub acquired_is: Counter,
    pub acquired_ix: Counter,
    pub acquired_s: Counter,
    pub acquired_x: Counter,
    /// Requests that blocked at least once before being granted or denied.
    pub waits: Counter,
    /// Time from first block to grant/denial, nanoseconds.
    pub wait_ns: Histogram,
    /// Requests denied by wait-for-graph cycle detection.
    pub deadlocks: Counter,
    /// Requests denied by the lock-wait timeout backstop.
    pub timeouts: Counter,
    /// Lock-table shard mutex acquisitions that found the shard already
    /// held (a `try_lock` failed and the caller had to block).
    pub shard_conflicts: Counter,
}

/// Lazy-timestamping instruments (VTT / PTT / stamping triggers).
#[derive(Debug, Default)]
pub struct TimestampMetrics {
    /// Timestamp resolutions served by the volatile table.
    pub vtt_hits: Counter,
    /// Resolutions that missed the VTT and consulted the persisted table.
    pub vtt_misses: Counter,
    /// Persisted-table lookups (== vtt_misses; kept for clarity).
    pub ptt_lookups: Counter,
    /// PTT records inserted at commit (lazy timestamping only).
    pub ptt_inserts: Counter,
    /// PTT records reclaimed by garbage collection.
    pub ptt_gc_deleted: Counter,
    /// Versions stamped, by trigger.
    pub stamps_read: Counter,
    pub stamps_update: Counter,
    pub stamps_flush: Counter,
    pub stamps_time_split: Counter,
    pub stamps_vacuum: Counter,
    pub stamps_eager: Counter,
}

impl TimestampMetrics {
    /// Total versions stamped across every trigger.
    pub fn stamps_total(&self) -> u64 {
        self.stamps_read.get()
            + self.stamps_update.get()
            + self.stamps_flush.get()
            + self.stamps_time_split.get()
            + self.stamps_vacuum.get()
            + self.stamps_eager.get()
    }
}

/// Time-split B+tree instruments.
#[derive(Debug, Default)]
pub struct TreeMetrics {
    /// Time splits (history page carved off a full versioned page).
    pub time_splits: Counter,
    /// Key splits (conventional B+tree splits).
    pub key_splits: Counter,
    /// History-page-chain hops taken by AS OF reads and scans.
    pub asof_hops: Counter,
    /// Version-chain length observed when a chain is stamped or read.
    pub version_chain_len: Histogram,
}

/// Version-encoding instruments (delta chains in historical pages).
#[derive(Debug, Default)]
pub struct VersionMetrics {
    /// Delta records folded onto their base during reconstruction
    /// (AS OF reads, scans, compaction walks).
    pub delta_folds: Counter,
    /// Delta-encoded records written while packing chains (time splits
    /// and compaction).
    pub deltas_written: Counter,
    /// Full (anchor) records written while packing chains.
    pub anchors_written: Counter,
    /// Live history bytes per stored version (×100, fixed-point), as
    /// measured by the most recent compaction pass.
    pub bytes_per_version: Gauge,
}

/// Background history-compactor instruments.
#[derive(Debug, Default)]
pub struct CompactionMetrics {
    /// Compaction passes completed (background or explicit).
    pub runs: Counter,
    /// Historical pages rewritten delta-packed in place or merged.
    pub pages_rewritten: Counter,
    /// Historical pages emptied by merging and returned to the free list.
    pub pages_freed: Counter,
    /// Net page bytes reclaimed by packing (pre-pack minus post-pack
    /// occupancy).
    pub bytes_reclaimed: Counter,
}

/// Temporal query-subsystem instruments (VERSIONS BETWEEN / DIFF /
/// named snapshots).
#[derive(Debug, Default)]
pub struct TemporalMetrics {
    /// Pages visited by TSB-tree time-range scans (index + leaf +
    /// history pages, each counted once per scan).
    pub range_scan_pages: Counter,
    /// Versions emitted by VERSIONS BETWEEN queries.
    pub versions_returned: Counter,
    /// Net change rows emitted by DIFF queries.
    pub diff_rows: Counter,
    /// Named snapshots currently registered in the catalog.
    pub snapshots: Gauge,
}

/// Wire-protocol server instruments (populated by `crates/net`; always
/// zero in embedded use).
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// TCP connections accepted (including ones later shed).
    pub connections_accepted: Counter,
    /// Connections shed with SERVER_BUSY by accept-queue backpressure.
    pub connections_rejected: Counter,
    /// Connections closed (client disconnect, idle timeout, shutdown).
    pub connections_closed: Counter,
    /// Connections shed at accept by the connection cap (reactor
    /// admission control; disjoint from `connections_rejected`, which
    /// counts the thread-per-connection accept-queue path).
    pub shed_connections: Counter,
    /// Individual request frames answered SERVER_BUSY because the
    /// in-flight request cap was hit (the connection stays open).
    pub shed_requests: Counter,
    /// Connections currently registered with the reactor (idle or
    /// active).
    pub open_connections: Gauge,
    /// Sessions currently being served by a worker.
    pub active_sessions: Gauge,
    /// Request frames processed (all opcodes).
    pub requests: Counter,
    /// Requests answered with an ERROR frame.
    pub errors: Counter,
    /// Open transactions rolled back by the idle-session timeout.
    pub idle_rollbacks: Counter,
    /// End-to-end server-side request latency (decode → response
    /// flushed), nanoseconds.
    pub request_ns: Histogram,
    /// Server-side latency of commit requests (explicit COMMIT frames and
    /// autocommitted statements), nanoseconds.
    pub commit_ns: Histogram,
}

/// Online isolation-sentinel instruments (populated by `crates/check`
/// when a sentinel is armed; always zero otherwise). Totals are gauges
/// mirrored from the single checker thread's running report, so they
/// are exact, not racy sums.
#[derive(Debug, Default)]
pub struct CheckMetrics {
    /// Transaction events consumed from the tap ring.
    pub events: Counter,
    /// Events lost to ring overflow (mirrored from the tap's counter;
    /// any nonzero value puts the checker in degraded mode).
    pub dropped_gauge: Gauge,
    /// Individual reads validated against the committed-version map.
    pub reads_checked_gauge: Gauge,
    /// Committed writer transactions folded into the version map.
    pub commits_checked_gauge: Gauge,
    /// Isolation violations found since arming. Nonzero is an engine
    /// bug; CI gates on this staying zero.
    pub violations_gauge: Gauge,
    /// Reads the checker had no committed knowledge to judge (pre-arm
    /// rows, pruned history, post-drop mismatches).
    pub unverifiable_gauge: Gauge,
    /// Events currently buffered in the tap ring awaiting the checker.
    pub backlog: Gauge,
}

/// Every instrument in the engine, grouped by layer. Constructed once
/// per [`MetricsRegistry`] and shared via `Arc`.
#[derive(Debug, Default)]
pub struct Metrics {
    pub buffer: BufferMetrics,
    pub wal: WalMetrics,
    pub recovery: RecoveryMetrics,
    pub locks: LockMetrics,
    pub ts: TimestampMetrics,
    pub tree: TreeMetrics,
    pub faults: FaultMetrics,
    pub server: ServerMetrics,
    pub repl: ReplMetrics,
    pub temporal: TemporalMetrics,
    pub latch: LatchMetrics,
    pub disk: DiskMetrics,
    pub version: VersionMetrics,
    pub compaction: CompactionMetrics,
    pub check: CheckMetrics,
}

/// Cloneable handle to a shared [`Metrics`] tree. Cloning is one `Arc`
/// bump; every component a registry is passed to records into the same
/// instruments.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Metrics>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Point-in-time copy of every instrument, with stable names.
    pub fn snapshot(&self) -> MetricsSnapshot {
        snapshot::take(self)
    }
}

impl std::ops::Deref for MetricsRegistry {
    type Target = Metrics;
    fn deref(&self) -> &Metrics {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn registry_clones_share_instruments() {
        let r1 = MetricsRegistry::new();
        let r2 = r1.clone();
        r1.buffer.hits.inc();
        r2.buffer.hits.inc();
        assert_eq!(r1.buffer.hits.get(), 2);
    }

    #[test]
    fn timer_records_elapsed() {
        let h = Histogram::new();
        {
            let _t = h.start_timer();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 2_000_000, "sum {} < 2ms", h.sum());
    }
}
