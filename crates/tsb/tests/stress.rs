use immortaldb_btree::SplitTimeSource;
use immortaldb_common::{Tid, Timestamp, TreeId, NULL_LSN};
use immortaldb_storage::buffer::BufferPool;
use immortaldb_storage::disk::DiskManager;
use immortaldb_storage::wal::Wal;
use immortaldb_storage::TimestampResolver;
use immortaldb_tsb::TsbTree;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Default)]
struct Auth {
    committed: Mutex<HashMap<Tid, Timestamp>>,
    max: Mutex<Timestamp>,
}
impl Auth {
    fn commit(&self, tid: Tid, ts: Timestamp) {
        self.committed.lock().insert(tid, ts);
        let mut m = self.max.lock();
        if ts > *m {
            *m = ts;
        }
    }
}
impl TimestampResolver for Auth {
    fn resolve(&self, tid: Tid) -> Option<Timestamp> {
        self.committed.lock().get(&tid).copied()
    }
}
impl SplitTimeSource for Auth {
    fn current_split_ts(&self) -> Timestamp {
        let m = *self.max.lock();
        Timestamp::new(m.ttime + 20, 0)
    }
}

#[test]
fn stress_reads_at_all_depths() {
    let dir = std::env::temp_dir().join(format!("tsb-stress-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let (disk, _) = DiskManager::open(dir.join("d.idb")).unwrap();
    let wal = Arc::new(Wal::open(dir.join("w.log")).unwrap());
    let pool = Arc::new(BufferPool::new(Arc::new(disk), Arc::clone(&wal), 4096));
    let auth = Arc::new(Auth::default());
    let tsb = TsbTree::create(
        Arc::clone(&pool),
        Arc::clone(&wal),
        TreeId(61),
        Arc::clone(&auth) as Arc<dyn SplitTimeSource>,
    )
    .unwrap();
    let keys = 200u64;
    let rounds = 150u64;
    let value = vec![5u8; 100];
    let mut tid = 0u64;
    let mut tick = 0u64;
    for k in 0..keys {
        tid += 1;
        tick += 1;
        let kb = immortaldb_common::codec::key_from_u64(k);
        tsb.insert(Tid(tid), NULL_LSN, &kb, &value, auth.as_ref())
            .unwrap();
        auth.commit(Tid(tid), Timestamp::new(tick * 20, 0));
    }
    let mut marks = vec![Timestamp::new(tick * 20, 1)];
    for r in 1..=rounds {
        for k in 0..keys {
            tid += 1;
            tick += 1;
            let kb = immortaldb_common::codec::key_from_u64(k);
            tsb.update(Tid(tid), NULL_LSN, &kb, &value, auth.as_ref())
                .unwrap();
            auth.commit(Tid(tid), Timestamp::new(tick * 20, 0));
        }
        if r % 15 == 0 {
            marks.push(Timestamp::new(tick * 20, 1));
        }
    }
    for (mi, at) in marks.iter().enumerate() {
        for k in 0..keys {
            let kb = immortaldb_common::codec::key_from_u64(k);
            let got = tsb
                .get_as_of(&kb, *at, None, auth.as_ref())
                .unwrap_or_else(|e| panic!("mark {mi} key {k}: {e}"));
            assert_eq!(got, Some(value.clone()), "mark {mi} key {k}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
