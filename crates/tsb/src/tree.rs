//! TSB-tree implementation: structure, temporal descent, writes, splits.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use immortaldb_btree::{
    pack_history_pages, page_has_tid_marked, page_used_bytes, CompactionStats, HistoryStats,
    SplitTimeSource,
};
use immortaldb_common::codec::{get_u32, get_u64, put_u32, put_u64};
use immortaldb_common::{Error, Lsn, PageId, Result, Tid, Timestamp, TreeId, NULL_LSN};
use immortaldb_storage::buffer::{BufferPool, FrameRef};
use immortaldb_storage::logrec::LogRecord;
use immortaldb_storage::meta::MetaView;
use immortaldb_storage::page::{Page, PageType, FLAG_HISTORICAL, FLAG_VERSIONED, REC_HDR};
use immortaldb_storage::version::{self, Visible};
use immortaldb_storage::wal::Wal;
use immortaldb_storage::TimestampResolver;

/// On an index page, each entry's data is `t_low (12B) | t_high (12B) |
/// child (4B)`, and entries are sorted by `key_low` (several time slices
/// may share a boundary).
const ENTRY_DATA: usize = 28;

fn encode_entry(t_low: Timestamp, t_high: Timestamp, child: PageId) -> [u8; ENTRY_DATA] {
    let mut b = [0u8; ENTRY_DATA];
    put_u64(&mut b, 0, t_low.ttime);
    put_u32(&mut b, 8, t_low.sn);
    put_u64(&mut b, 12, t_high.ttime);
    put_u32(&mut b, 20, t_high.sn);
    put_u32(&mut b, 24, child.0);
    b
}

/// A decoded index entry: the key-time rectangle `[key_low, next key_low)
/// × [t_low, t_high)` and the page it points at.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry {
    key_low: Vec<u8>,
    t_low: Timestamp,
    t_high: Timestamp,
    child: PageId,
}

impl Entry {
    fn is_open(&self) -> bool {
        self.t_high == Timestamp::MAX
    }

    fn encoded(&self) -> [u8; ENTRY_DATA] {
        encode_entry(self.t_low, self.t_high, self.child)
    }

    /// Whether the time range contains `t` (`MAX` = open range, also
    /// containing current-time queries at `MAX`).
    fn covers(&self, t: Timestamp) -> bool {
        t >= self.t_low && (self.is_open() || t < self.t_high)
    }
}

fn decode_entry(page: &Page, slot: usize) -> Entry {
    let off = page.slot(slot);
    let d = page.rec_data(off);
    Entry {
        key_low: page.rec_key(off).to_vec(),
        t_low: Timestamp::new(get_u64(d, 0), get_u32(d, 8)),
        t_high: Timestamp::new(get_u64(d, 12), get_u32(d, 20)),
        child: PageId(get_u32(d, 24)),
    }
}

fn entries(page: &Page) -> Vec<Entry> {
    (0..page.slot_count())
        .map(|i| decode_entry(page, i))
        .collect()
}

fn insert_entry(page: &mut Page, e: &Entry) -> Result<()> {
    let need = REC_HDR + e.key_low.len() + ENTRY_DATA + 2;
    if need > page.contiguous_free() && need <= page.total_free() {
        page.compact()?;
    }
    page.insert_sorted_dup(&e.key_low, &e.encoded(), 0)?;
    Ok(())
}

/// One step of a temporal descent.
struct Step {
    node: PageId,
    slot: usize,
    entry_t_low: Timestamp,
}

/// A disk-backed TSB-tree over versioned data pages. Like the main
/// B-tree: exactly one handle per tree (the structure latch lives here).
pub struct TsbTree {
    tree_id: TreeId,
    pool: Arc<BufferPool>,
    wal: Arc<Wal>,
    root: AtomicU32,
    structure: RwLock<()>,
    split_time: Arc<dyn SplitTimeSource>,
    split_threshold: f64,
    time_splits: AtomicU32,
    key_splits: AtomicU32,
    /// Serializes compaction passes; the pass itself additionally runs
    /// under the structure write latch.
    compacting: Mutex<()>,
}

impl TsbTree {
    pub fn create(
        pool: Arc<BufferPool>,
        wal: Arc<Wal>,
        tree_id: TreeId,
        split_time: Arc<dyn SplitTimeSource>,
    ) -> Result<TsbTree> {
        let root_frame = pool.new_page(PageType::Leaf, FLAG_VERSIONED, 0)?;
        let root_id = root_frame.page_id();
        let meta_frame = pool.fetch(PageId(0))?;
        let mut meta_g = meta_frame.write();
        if MetaView::tree_root(&meta_g, tree_id).is_some() {
            return Err(Error::Catalog(format!("{tree_id:?} already exists")));
        }
        let mut new_meta = meta_g.clone();
        MetaView::set_tree_root(&mut new_meta, tree_id, root_id)?;
        let root_g = root_frame.read();
        let lsn = wal.append(
            Tid::SYSTEM,
            NULL_LSN,
            &LogRecord::PageImages {
                pages: vec![
                    (root_id, root_g.as_bytes().to_vec()),
                    (PageId(0), new_meta.as_bytes().to_vec()),
                ],
            },
        );
        drop(root_g);
        new_meta.set_page_lsn(lsn);
        *meta_g = new_meta;
        meta_frame.mark_dirty(lsn);
        drop(meta_g);
        {
            let mut g = root_frame.write();
            g.set_page_lsn(lsn);
        }
        root_frame.mark_dirty(lsn);
        Ok(Self::handle(pool, wal, tree_id, root_id, split_time))
    }

    pub fn open(
        pool: Arc<BufferPool>,
        wal: Arc<Wal>,
        tree_id: TreeId,
        split_time: Arc<dyn SplitTimeSource>,
    ) -> Result<TsbTree> {
        let meta_frame = pool.fetch(PageId(0))?;
        let root = {
            let g = meta_frame.read();
            MetaView::tree_root(&g, tree_id)
                .ok_or_else(|| Error::Catalog(format!("{tree_id:?} not found")))?
        };
        Ok(Self::handle(pool, wal, tree_id, root, split_time))
    }

    fn handle(
        pool: Arc<BufferPool>,
        wal: Arc<Wal>,
        tree_id: TreeId,
        root: PageId,
        split_time: Arc<dyn SplitTimeSource>,
    ) -> TsbTree {
        TsbTree {
            tree_id,
            pool,
            wal,
            root: AtomicU32::new(root.0),
            structure: RwLock::new(()),
            split_time,
            split_threshold: 0.7,
            time_splits: AtomicU32::new(0),
            key_splits: AtomicU32::new(0),
            compacting: Mutex::new(()),
        }
    }

    pub fn tree_id(&self) -> TreeId {
        self.tree_id
    }

    pub fn root(&self) -> PageId {
        PageId(self.root.load(Ordering::SeqCst))
    }

    /// `(time splits, key splits)` of data pages since this handle opened.
    pub fn split_counts(&self) -> (u32, u32) {
        (
            self.time_splits.load(Ordering::Relaxed),
            self.key_splits.load(Ordering::Relaxed),
        )
    }

    /// Height of the tree (1 = root is a data page) and total index
    /// nodes reachable for current-time descents (diagnostics).
    pub fn height(&self) -> Result<u16> {
        let frame = self.pool.fetch(self.root())?;
        let levels = frame.read().level() + 1;
        Ok(levels)
    }

    // -- descent ------------------------------------------------------------

    /// In `page`, find the entry covering `(key, t)`: greatest
    /// `key_low ≤ key` whose time range contains `t` (backward scan skips
    /// other time slices of the same boundary).
    fn pick_entry(page: &Page, key: &[u8], t: Timestamp) -> Option<usize> {
        let n = page.slot_count();
        let start = match page.find_slot(key) {
            Ok(mut i) => {
                while i + 1 < n && page.rec_key(page.slot(i + 1)) == key {
                    i += 1;
                }
                i + 1
            }
            Err(pos) => pos,
        };
        (0..start).rev().find(|&i| decode_entry(page, i).covers(t))
    }

    /// Descend to the data page covering `(key, t)`, recording the path.
    fn descend(&self, key: &[u8], t: Timestamp) -> Result<(FrameRef, Vec<Step>)> {
        let metrics = self.pool.metrics();
        let mut steps = Vec::new();
        let mut page_id = self.root();
        loop {
            let frame = self.pool.fetch(page_id)?;
            // Optimistic step: validate the version counter around a
            // latch-free copy; a racing split retries or falls back.
            let step = frame.read_optimistic(metrics, |g| match g.page_type()? {
                PageType::Leaf => Ok(None),
                PageType::Index => {
                    let i = Self::pick_entry(g, key, t).ok_or_else(|| {
                        Error::Corruption(format!(
                            "TSB index {page_id:?} has no entry covering the key/time"
                        ))
                    })?;
                    let e = decode_entry(g, i);
                    Ok(Some((
                        Step {
                            node: page_id,
                            slot: i,
                            entry_t_low: e.t_low,
                        },
                        e.child,
                    )))
                }
                other => Err(Error::Corruption(format!(
                    "TSB descent hit {other:?} page {page_id:?}"
                ))),
            })?;
            match step {
                None => return Ok((frame, steps)),
                Some((s, child)) => {
                    steps.push(s);
                    page_id = child;
                }
            }
        }
    }

    // -- reads ---------------------------------------------------------------

    /// Version of `key` current AS OF `as_of` — one index descent, no
    /// page-chain walk (the point of the TSB-tree).
    pub fn get_as_of(
        &self,
        key: &[u8],
        as_of: Timestamp,
        own_tid: Option<Tid>,
        resolver: &dyn TimestampResolver,
    ) -> Result<Option<Vec<u8>>> {
        let _s = self.structure.read();
        // Own uncommitted versions live only in the CURRENT data page
        // (time splits keep them there); a temporal descent at `as_of`
        // would route past them after a concurrent time split, so check
        // the current page first when reading on behalf of a transaction.
        let metrics = self.pool.metrics();
        if let Some(own) = own_tid {
            let (frame, _) = self.descend(key, Timestamp::MAX)?;
            let own_read = frame.read_optimistic(metrics, |g| {
                let i = g.find_slot(key).ok()?;
                let has_own = version::chain_offsets(g, i)
                    .iter()
                    .any(|&off| g.rec_is_tid_marked(off) && g.rec_tid(off) == own);
                if !has_own {
                    return None;
                }
                Some(
                    match version::visible_as_of(g, i, as_of, own_tid, resolver) {
                        Visible::Version(off) => Some(g.rec_data(off).to_vec()),
                        Visible::Deleted | Visible::NotHere => None,
                    },
                )
            });
            if let Some(r) = own_read {
                return Ok(r);
            }
        }
        let (frame, _) = self.descend(key, as_of)?;
        // Errors ride inside the closure result: a torn optimistic
        // observation can make delta folding fail spuriously, and seqlock
        // validation discards it before it can surface.
        let r = frame.read_optimistic(metrics, |g| -> Result<Option<(Vec<u8>, u64)>> {
            let Ok(i) = g.find_slot(key) else {
                return Ok(None);
            };
            match version::visible_as_of(g, i, as_of, own_tid, resolver) {
                Visible::Version(off) => Some(version::materialize_at(g, i, off)).transpose(),
                Visible::Deleted | Visible::NotHere => Ok(None),
            }
        })?;
        Ok(r.map(|(data, folds)| {
            if folds > 0 {
                metrics.version.delta_folds.add(folds);
            }
            data
        }))
    }

    /// Current version of `key`.
    pub fn get_current(
        &self,
        key: &[u8],
        own_tid: Option<Tid>,
        resolver: &dyn TimestampResolver,
    ) -> Result<Option<Vec<u8>>> {
        self.get_as_of(key, Timestamp::MAX, own_tid, resolver)
    }

    /// Full scan AS OF `as_of`, key-ordered.
    pub fn scan_as_of(
        &self,
        as_of: Timestamp,
        own_tid: Option<Tid>,
        resolver: &dyn TimestampResolver,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let _s = self.structure.read();
        let mut out = Vec::new();
        self.scan_node(self.root(), as_of, &[], None, own_tid, resolver, &mut out)?;
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)]
    fn scan_node(
        &self,
        page_id: PageId,
        as_of: Timestamp,
        low: &[u8],
        upper: Option<&[u8]>,
        own_tid: Option<Tid>,
        resolver: &dyn TimestampResolver,
        out: &mut Vec<(Vec<u8>, Vec<u8>)>,
    ) -> Result<()> {
        let frame = self.pool.fetch(page_id)?;
        let g = frame.read();
        match g.page_type()? {
            PageType::Leaf => {
                for i in 0..g.slot_count() {
                    let off = g.slot(i);
                    let key = g.rec_key(off);
                    if key < low {
                        continue;
                    }
                    if let Some(up) = upper {
                        if key >= up {
                            break;
                        }
                    }
                    if let Visible::Version(voff) =
                        version::visible_as_of(&g, i, as_of, own_tid, resolver)
                    {
                        let (data, folds) = version::materialize_at(&g, i, voff)?;
                        if folds > 0 {
                            self.pool.metrics().version.delta_folds.add(folds);
                        }
                        out.push((key.to_vec(), data));
                    }
                }
                Ok(())
            }
            PageType::Index => {
                // Entries covering `as_of`, in key order, partition this
                // node's key region for that time slice.
                let matching: Vec<Entry> = entries(&g)
                    .into_iter()
                    .filter(|e| e.covers(as_of))
                    .collect();
                drop(g);
                for (i, e) in matching.iter().enumerate() {
                    let child_low: &[u8] = if e.key_low.as_slice() > low {
                        &e.key_low
                    } else {
                        low
                    };
                    let next_low = matching.get(i + 1).map(|n| n.key_low.as_slice());
                    let child_upper = match (next_low, upper) {
                        (Some(a), Some(b)) => Some(if a < b { a } else { b }),
                        (Some(a), None) => Some(a),
                        (None, b) => b,
                    };
                    self.scan_node(
                        e.child,
                        as_of,
                        child_low,
                        child_upper,
                        own_tid,
                        resolver,
                        out,
                    )?;
                }
                Ok(())
            }
            other => Err(Error::Corruption(format!(
                "TSB scan hit {other:?} page {page_id:?}"
            ))),
        }
    }

    /// Time-range scan: every committed version with a commit timestamp
    /// in `[lo, hi]`, plus each key's base version (newest below `lo`),
    /// across the whole key space — in ONE index walk. Index entries are
    /// filtered by rectangle-intersects-window, so each historical page
    /// is visited once instead of once per AS OF replay; visited pages
    /// feed the `tsb.range_scan_pages` counter.
    pub fn versions_between(
        &self,
        lo: Timestamp,
        hi: Timestamp,
        resolver: &dyn TimestampResolver,
    ) -> Result<Vec<immortaldb_btree::TemporalVersion>> {
        let _s = self.structure.read();
        let mut raw = Vec::new();
        let mut pages = std::collections::HashSet::new();
        self.range_node(
            self.root(),
            lo,
            hi,
            &[],
            None,
            resolver,
            &mut pages,
            &mut raw,
        )?;
        self.pool
            .metrics()
            .temporal
            .range_scan_pages
            .add(pages.len() as u64);
        Ok(immortaldb_btree::trim_version_window(raw, lo))
    }

    #[allow(clippy::too_many_arguments)]
    fn range_node(
        &self,
        page_id: PageId,
        lo: Timestamp,
        hi: Timestamp,
        low: &[u8],
        upper: Option<&[u8]>,
        resolver: &dyn TimestampResolver,
        pages: &mut std::collections::HashSet<PageId>,
        out: &mut Vec<immortaldb_btree::TemporalVersion>,
    ) -> Result<()> {
        let frame = self.pool.fetch(page_id)?;
        pages.insert(page_id);
        let g = frame.read();
        match g.page_type()? {
            PageType::Leaf => {
                for i in 0..g.slot_count() {
                    let off = g.slot(i);
                    let key = g.rec_key(off);
                    if key < low {
                        continue;
                    }
                    if let Some(up) = upper {
                        if key >= up {
                            break;
                        }
                    }
                    let folds =
                        immortaldb_btree::collect_chain_window(&g, i, lo, hi, resolver, out)?;
                    if folds > 0 {
                        self.pool.metrics().version.delta_folds.add(folds);
                    }
                }
                Ok(())
            }
            PageType::Index => {
                // Entries whose rectangles intersect `[lo, hi]`, in key
                // order. A page covering `lo` also matches, so each key's
                // base version is reached. Unlike the point-time scan,
                // SEVERAL time slices of one key boundary may match, so
                // the key partition uses the next DISTINCT boundary.
                let matching: Vec<Entry> = entries(&g)
                    .into_iter()
                    .filter(|e| e.t_low <= hi && (e.is_open() || e.t_high > lo))
                    .collect();
                drop(g);
                for (i, e) in matching.iter().enumerate() {
                    let child_low: &[u8] = if e.key_low.as_slice() > low {
                        &e.key_low
                    } else {
                        low
                    };
                    let next_low = matching[i + 1..]
                        .iter()
                        .map(|n| n.key_low.as_slice())
                        .find(|k| *k > e.key_low.as_slice());
                    let child_upper = match (next_low, upper) {
                        (Some(a), Some(b)) => Some(if a < b { a } else { b }),
                        (Some(a), None) => Some(a),
                        (None, b) => b,
                    };
                    self.range_node(
                        e.child,
                        lo,
                        hi,
                        child_low,
                        child_upper,
                        resolver,
                        pages,
                        out,
                    )?;
                }
                Ok(())
            }
            other => Err(Error::Corruption(format!(
                "TSB range scan hit {other:?} page {page_id:?}"
            ))),
        }
    }

    /// State of the newest version of `key` (for first-committer-wins
    /// checks; mirrors `BTree::head_version`).
    pub fn head_version(
        &self,
        key: &[u8],
        resolver: &dyn TimestampResolver,
    ) -> Result<immortaldb_btree::HeadVersion> {
        use immortaldb_btree::HeadVersion;
        let _s = self.structure.read();
        let (frame, _) = self.descend(key, Timestamp::MAX)?;
        let g = frame.read();
        let Ok(i) = g.find_slot(key) else {
            return Ok(HeadVersion::NotFound);
        };
        let off = g.slot(i);
        let stub = g.rec_is_stub(off);
        if g.rec_is_tid_marked(off) {
            let owner = g.rec_tid(off);
            match resolver.resolve(owner) {
                Some(ts) => Ok(HeadVersion::Committed { ts, stub }),
                None => Ok(HeadVersion::Uncommitted { tid: owner, stub }),
            }
        } else {
            Ok(HeadVersion::Committed {
                ts: g.rec_timestamp(off),
                stub,
            })
        }
    }

    /// Complete version history of `key`, newest first, gathered by
    /// repeated temporal descents (one per time slice of the key's
    /// region). Spanning duplicates are removed by timestamp.
    pub fn history_of(
        &self,
        key: &[u8],
        resolver: &dyn TimestampResolver,
    ) -> Result<Vec<immortaldb_btree::HistoryVersion>> {
        use immortaldb_btree::HistoryVersion;
        let _s = self.structure.read();
        let mut out: Vec<HistoryVersion> = Vec::new();
        let mut last_ts: Option<Timestamp> = None;
        let mut t = Timestamp::MAX;
        let mut visited = std::collections::HashSet::new();
        loop {
            let (frame, _) = self.descend(key, t)?;
            let g = frame.read();
            if !visited.insert(g.page_id()) {
                break; // same page again: no older slice exists
            }
            if let Ok(i) = g.find_slot(key) {
                let mut walker = version::ChainWalker::new(&g, i);
                while let Some(off) = walker.step()? {
                    let (ts, tid) = if g.rec_is_tid_marked(off) {
                        match resolver.resolve(g.rec_tid(off)) {
                            Some(ts) => (Some(ts), None),
                            None => (None, Some(g.rec_tid(off))),
                        }
                    } else {
                        (Some(g.rec_timestamp(off)), None)
                    };
                    if ts.is_some() && ts == last_ts {
                        continue; // spanning duplicate
                    }
                    if let Some(stamp) = ts {
                        last_ts = Some(stamp);
                    }
                    out.push(HistoryVersion {
                        ts,
                        tid,
                        data: if g.rec_is_stub(off) {
                            None
                        } else {
                            Some(walker.data().to_vec())
                        },
                    });
                }
                if walker.folds > 0 {
                    self.pool.metrics().version.delta_folds.add(walker.folds);
                }
            }
            // Step into the previous time slice of this key's region.
            let start = g.start_ts();
            if start == Timestamp::ZERO {
                break;
            }
            t = if start.sn > 0 {
                Timestamp::new(start.ttime, start.sn - 1)
            } else if start.ttime > 0 {
                Timestamp::new(start.ttime - 1, immortaldb_common::time::SN_TID_MARK - 1)
            } else {
                break;
            };
        }
        Ok(out)
    }

    /// Eager-timestamping baseline support (mirrors `BTree::eager_stamp`):
    /// stamp all of `tid`'s versions in `key`'s chain with `ts`, logged.
    pub fn eager_stamp(
        &self,
        tid: Tid,
        prev_lsn: Lsn,
        key: &[u8],
        ts: Timestamp,
    ) -> Result<(Lsn, u32)> {
        let _s = self.structure.read();
        let (frame, _) = self.descend(key, Timestamp::MAX)?;
        let mut g = frame.write();
        let Ok(i) = g.find_slot(key) else {
            return Ok((prev_lsn, 0));
        };
        let rec = LogRecord::EagerStamp {
            tree: self.tree_id,
            page: frame.page_id(),
            key: key.to_vec(),
            ts,
        };
        let lsn = self.wal.append(tid, prev_lsn, &rec);
        let mut n = 0u32;
        for off in version::chain_offsets(&g, i) {
            if g.rec_is_tid_marked(off) && g.rec_tid(off) == tid {
                g.stamp_rec(off, ts);
                n += 1;
            }
        }
        g.set_page_lsn(lsn);
        frame.mark_dirty(lsn);
        Ok((lsn, n))
    }

    /// Vacuum support: stamp every committed TID-marked record in every
    /// current data page (reachable via open index entries). Returns the
    /// number of records stamped.
    pub fn stamp_all(&self, resolver: &dyn TimestampResolver) -> Result<u64> {
        let _s = self.structure.read();
        let mut stamped = 0u64;
        let mut visited = std::collections::HashSet::new();
        self.stamp_node(self.root(), resolver, &mut visited, &mut stamped)?;
        Ok(stamped)
    }

    fn stamp_node(
        &self,
        page_id: PageId,
        resolver: &dyn TimestampResolver,
        visited: &mut std::collections::HashSet<PageId>,
        stamped: &mut u64,
    ) -> Result<()> {
        if !visited.insert(page_id) {
            return Ok(());
        }
        let frame = self.pool.fetch(page_id)?;
        let g = frame.read();
        match g.page_type()? {
            PageType::Leaf => {
                drop(g);
                let mut g = frame.write();
                let counts = version::stamp_committed(&mut g, resolver);
                if !counts.is_empty() {
                    frame.mark_dirty_unlogged();
                }
                for (tid, n) in counts {
                    resolver.note_stamped(tid, n);
                    *stamped += n as u64;
                }
                Ok(())
            }
            PageType::Index => {
                // Only open entries can lead to pages with TID marks.
                let children: Vec<PageId> = entries(&g)
                    .into_iter()
                    .filter(|e| e.is_open())
                    .map(|e| e.child)
                    .collect();
                drop(g);
                for child in children {
                    self.stamp_node(child, resolver, visited, stamped)?;
                }
                Ok(())
            }
            other => Err(Error::Corruption(format!(
                "vacuum hit {other:?} page {page_id:?}"
            ))),
        }
    }

    /// `TreeLocator` support: current leaf page for `key`.
    pub fn locate_leaf_page(&self, key: &[u8]) -> Result<PageId> {
        let _s = self.structure.read();
        Ok(self.descend(key, Timestamp::MAX)?.0.page_id())
    }

    /// `TreeLocator` support: current leaf for `key` with at least
    /// `space` free bytes, splitting as needed.
    pub fn locate_leaf_page_for_insert(
        &self,
        key: &[u8],
        space: usize,
        resolver: &dyn TimestampResolver,
    ) -> Result<PageId> {
        loop {
            {
                let _s = self.structure.read();
                let (frame, _) = self.descend(key, Timestamp::MAX)?;
                let g = frame.read();
                if space <= g.total_free() {
                    return Ok(frame.page_id());
                }
            }
            self.split_for(key, space, resolver)?;
        }
    }

    // -- writes --------------------------------------------------------------

    pub fn insert(
        &self,
        tid: Tid,
        prev_lsn: Lsn,
        key: &[u8],
        data: &[u8],
        resolver: &dyn TimestampResolver,
    ) -> Result<Lsn> {
        self.write(tid, prev_lsn, key, data, false, true, resolver)
    }

    pub fn update(
        &self,
        tid: Tid,
        prev_lsn: Lsn,
        key: &[u8],
        data: &[u8],
        resolver: &dyn TimestampResolver,
    ) -> Result<Lsn> {
        self.write(tid, prev_lsn, key, data, false, false, resolver)
    }

    pub fn delete(
        &self,
        tid: Tid,
        prev_lsn: Lsn,
        key: &[u8],
        resolver: &dyn TimestampResolver,
    ) -> Result<Lsn> {
        self.write(tid, prev_lsn, key, &[], true, false, resolver)
    }

    #[allow(clippy::too_many_arguments)]
    fn write(
        &self,
        tid: Tid,
        prev_lsn: Lsn,
        key: &[u8],
        data: &[u8],
        stub: bool,
        is_insert: bool,
        resolver: &dyn TimestampResolver,
    ) -> Result<Lsn> {
        if key.len() + data.len() > immortaldb_btree::MAX_RECORD {
            return Err(Error::RecordTooLarge(key.len() + data.len()));
        }
        loop {
            {
                let _s = self.structure.read();
                let (frame, _) = self.descend(key, Timestamp::MAX)?;
                let mut g = frame.write();
                match g.find_slot(key) {
                    Ok(i) => {
                        let head = g.slot(i);
                        let head_live = if g.rec_is_tid_marked(head) {
                            let owner = g.rec_tid(head);
                            if owner != tid && resolver.resolve(owner).is_none() {
                                return Err(Error::WriteConflict(tid));
                            }
                            !g.rec_is_stub(head)
                        } else {
                            !g.rec_is_stub(head)
                        };
                        if is_insert && head_live {
                            return Err(Error::DuplicateKey);
                        }
                        if !is_insert && !head_live {
                            return Err(Error::KeyNotFound);
                        }
                        for (t, n) in version::stamp_chain(&mut g, i, resolver) {
                            resolver.note_stamped(t, n);
                        }
                    }
                    Err(_) if is_insert => {}
                    Err(_) => return Err(Error::KeyNotFound),
                }
                let rec = LogRecord::AddVersion {
                    tree: self.tree_id,
                    page: frame.page_id(),
                    key: key.to_vec(),
                    data: data.to_vec(),
                    stub,
                };
                match version::add_version(&mut g, key, data, stub, tid) {
                    Ok(_) => {
                        let lsn = self.wal.append(tid, prev_lsn, &rec);
                        g.set_page_lsn(lsn);
                        frame.mark_dirty(lsn);
                        return Ok(lsn);
                    }
                    Err(Error::PageFull) => {}
                    Err(e) => return Err(e),
                }
            }
            let need = REC_HDR + key.len() + data.len() + immortaldb_common::VERSION_TAIL + 2;
            self.split_for(key, need, resolver)?;
        }
    }

    /// Batched bulk insert: apply a run of key-ordered rows that land on
    /// the same current data page under ONE write latch and one
    /// dirty-page marking, instead of a latch/dirty round-trip per row.
    /// Each row still gets its own `AddVersion` log record (same
    /// `prev_lsn` chain as single-row inserts), so undo, CLRs and logical
    /// replica replay are unchanged. Returns the last LSN appended.
    ///
    /// Rows are `(key, data)` inserts with the same conflict semantics as
    /// [`TsbTree::insert`]; an error (e.g. `DuplicateKey`) aborts the
    /// remainder of the batch — rows already applied stay, tied to `tid`,
    /// and roll back with the transaction as usual.
    pub fn insert_batch(
        &self,
        tid: Tid,
        prev_lsn: Lsn,
        rows: &[(Vec<u8>, Vec<u8>)],
        resolver: &dyn TimestampResolver,
    ) -> Result<Lsn> {
        for (key, data) in rows {
            if key.len() + data.len() > immortaldb_btree::MAX_RECORD {
                return Err(Error::RecordTooLarge(key.len() + data.len()));
            }
        }
        let mut last_lsn = prev_lsn;
        let mut i = 0;
        while i < rows.len() {
            let mut full_at: Option<usize> = None;
            {
                // Holding the structure latch across the run pins every
                // key→leaf routing: the latch-free descents below cannot
                // be invalidated by a concurrent split before the run is
                // applied. Run discovery happens BEFORE the write latch is
                // taken (descents read-latch the leaf they land on).
                let _s = self.structure.read();
                let (frame, _) = self.descend(&rows[i].0, Timestamp::MAX)?;
                let leaf_id = frame.page_id();
                let mut end = i + 1;
                while end < rows.len() {
                    let (f2, _) = self.descend(&rows[end].0, Timestamp::MAX)?;
                    if f2.page_id() != leaf_id {
                        break;
                    }
                    end += 1;
                }
                // Apply the whole run under one write latch.
                let mut g = frame.write();
                let mut first_in_run = true;
                while i < end {
                    let (key, data) = &rows[i];
                    if let Ok(s) = g.find_slot(key) {
                        let head = g.slot(s);
                        let head_live = if g.rec_is_tid_marked(head) {
                            let owner = g.rec_tid(head);
                            if owner != tid && resolver.resolve(owner).is_none() {
                                return Err(Error::WriteConflict(tid));
                            }
                            !g.rec_is_stub(head)
                        } else {
                            !g.rec_is_stub(head)
                        };
                        if head_live {
                            return Err(Error::DuplicateKey);
                        }
                        for (t, n) in version::stamp_chain(&mut g, s, resolver) {
                            resolver.note_stamped(t, n);
                        }
                    }
                    match version::add_version(&mut g, key, data, false, tid) {
                        Ok(_) => {
                            let rec = LogRecord::AddVersion {
                                tree: self.tree_id,
                                page: leaf_id,
                                key: key.clone(),
                                data: data.clone(),
                                stub: false,
                            };
                            last_lsn = self.wal.append(tid, last_lsn, &rec);
                            if first_in_run {
                                // Enter the dirty-page table with the run's
                                // FIRST lsn so a concurrent checkpoint's
                                // recLSN covers every record of the run.
                                g.set_page_lsn(last_lsn);
                                frame.mark_dirty(last_lsn);
                                first_in_run = false;
                            }
                            i += 1;
                        }
                        Err(Error::PageFull) => {
                            full_at = Some(i);
                            break;
                        }
                        Err(e) => return Err(e),
                    }
                }
                if !first_in_run {
                    g.set_page_lsn(last_lsn);
                    frame.mark_dirty(last_lsn);
                }
            }
            if let Some(at) = full_at {
                let (key, data) = &rows[at];
                let need = REC_HDR + key.len() + data.len() + immortaldb_common::VERSION_TAIL + 2;
                self.split_for(key, need, resolver)?;
            }
        }
        Ok(last_lsn)
    }

    // -- splits ---------------------------------------------------------------

    fn split_for(&self, key: &[u8], need: usize, resolver: &dyn TimestampResolver) -> Result<()> {
        let _s = self.structure.write();
        // Sample the split-time bound BEFORE the stamping pass below: a
        // transaction still in flight while we stamp leaves TID-marked
        // versions in the page, and sampling afterwards could observe it
        // retired and lift the bound above its commit timestamp — the
        // time split would then set the fresh page's start past versions
        // that stay current (case 4), stranding them from every AS OF
        // read at their commit time. Sampling first pins the bound at or
        // below any commit the stamping pass can leave unstamped.
        let mut split_ts = self.split_time.current_split_ts();
        let max_safe_ts = self.split_time.max_safe_split_ts();
        let (leaf_frame, steps) = self.descend(key, Timestamp::MAX)?;
        let leaf_id = leaf_frame.page_id();
        let mut leaf: Page = {
            let mut g = leaf_frame.write();
            if need <= g.total_free() {
                return Ok(());
            }
            for (t, n) in version::stamp_committed(&mut g, resolver) {
                resolver.note_stamped(t, n);
            }
            g.clone()
        };
        drop(leaf_frame);

        let mut images: Vec<Page> = Vec::new();
        let mut retime: Option<Timestamp> = None;
        let mut adds: Vec<Entry> = Vec::new();
        let parent_t_low = steps
            .last()
            .map(|s| s.entry_t_low)
            .unwrap_or(Timestamp::ZERO);
        let leaf_key_low = self.region_low(&steps)?;

        // 1. time split (sheds history to a new historical page).
        if split_ts <= leaf.start_ts() {
            split_ts = Timestamp::new(leaf.start_ts().ttime, leaf.start_ts().sn + 1);
        }
        // Never split past the source's safe bound: an in-flight commit's
        // TID-marked versions stay in the current page and must not end
        // up below its start timestamp.
        let safe = split_ts <= max_safe_ts;
        if safe && version::time_split_gain(&leaf, split_ts) > 0 {
            let hist_id = self.pool.disk().allocate()?;
            let (hist, fresh, packed) = version::time_split(&leaf, split_ts, hist_id)?;
            let m = self.pool.metrics();
            m.version.anchors_written.add(packed.anchors);
            m.version.deltas_written.add(packed.deltas);
            images.push(hist);
            adds.push(Entry {
                key_low: leaf_key_low.clone(),
                t_low: parent_t_low,
                t_high: split_ts,
                child: hist_id,
            });
            retime = Some(split_ts);
            leaf = fresh;
            // Per-tree counter kept (tests read it); the engine-wide
            // registry aggregates across trees.
            self.time_splits.fetch_add(1, Ordering::Relaxed);
            self.pool.metrics().tree.time_splits.inc();
        }
        // 2. key split (still too full, or nothing historical to shed).
        if leaf.utilization() > self.split_threshold || need > leaf.total_free() {
            if leaf.slot_count() < 2 {
                return Err(Error::RecordTooLarge(need));
            }
            let right_id = self.pool.disk().allocate()?;
            let (l, r, sep) = version::key_split(&leaf, right_id)?;
            adds.push(Entry {
                key_low: sep,
                t_low: retime.unwrap_or(parent_t_low),
                t_high: Timestamp::MAX,
                child: right_id,
            });
            images.push(r);
            leaf = l;
            self.key_splits.fetch_add(1, Ordering::Relaxed);
            self.pool.metrics().tree.key_splits.inc();
        }
        images.push(leaf);

        // 3. post upward, 4. log + install.
        let new_root = self.post(steps, leaf_id, retime, adds, &mut images)?;
        self.install(images, new_root)
    }

    /// Low key of the region of the page the descent path ends at
    /// (the key of its entry in the parent; empty for the root).
    fn region_low(&self, steps: &[Step]) -> Result<Vec<u8>> {
        match steps.last() {
            None => Ok(Vec::new()),
            Some(s) => {
                let frame = self.pool.fetch(s.node)?;
                let g = frame.read();
                Ok(g.rec_key(g.slot(s.slot)).to_vec())
            }
        }
    }

    /// Apply `(retime, adds)` to the parent of `child`, splitting index
    /// nodes upward as needed. Every modified page image ends up in
    /// `images`.
    fn post(
        &self,
        mut steps: Vec<Step>,
        mut child: PageId,
        mut retime: Option<Timestamp>,
        mut adds: Vec<Entry>,
        images: &mut Vec<Page>,
    ) -> Result<Option<PageId>> {
        while retime.is_some() || !adds.is_empty() {
            let Some(step) = steps.pop() else {
                let new_root =
                    self.grow_root(child, retime.take(), std::mem::take(&mut adds), images)?;
                return Ok(Some(new_root));
            };
            // Region low of the node being modified (for a possible index
            // time split posting); `steps` now ends at its parent.
            let node_region_low = self.region_low(&steps)?;
            // This node's own rectangle lower time bound: the t_low of its
            // entry in *its* parent (ZERO for the root) — NOT the t_low of
            // the entry we descended through inside it.
            let node_t_low = steps
                .last()
                .map(|s| s.entry_t_low)
                .unwrap_or(Timestamp::ZERO);

            let frame = self.pool.fetch(step.node)?;
            let mut node = frame.read().clone();
            drop(frame);

            if let Some(new_t_low) = retime.take() {
                let slot = self.find_child_entry(&node, child)?;
                let off = node.slot(slot);
                let d = node.rec_data_mut(off);
                put_u64(d, 0, new_t_low.ttime);
                put_u32(d, 8, new_t_low.sn);
            }

            // Insert entries; split *proactively* above 85% utilization so
            // that a time split's full history copy still has headroom for
            // the (at most two) pending entries — each is ~40 bytes, far
            // below the reserved 15%.
            let mut halves = Halves {
                current: node,
                right: None,
                right_sep: None,
                hist: None,
                hist_split_ts: None,
            };
            let mut next_retime: Option<Timestamp> = None;
            let mut next_adds: Vec<Entry> = Vec::new();
            if halves.current.utilization() > 0.85 {
                let (posted, posted_retime) =
                    self.split_index_node(&mut halves, node_t_low, &node_region_low)?;
                next_adds.extend(posted);
                next_retime = posted_retime;
            }
            for e in adds.drain(..) {
                halves.insert(&e).map_err(|err| match err {
                    Error::PageFull => {
                        Error::Internal("index entry does not fit after proactive split".into())
                    }
                    other => other,
                })?;
            }
            images.push(halves.current);
            if let Some(r) = halves.right {
                images.push(r);
            }
            if let Some(h) = halves.hist {
                images.push(h);
            }
            child = step.node;
            retime = next_retime;
            adds = next_adds;
        }
        Ok(None)
    }

    /// Create a new root above `child`, containing the (possibly retimed)
    /// entry for `child` plus `adds`. The meta-directory update happens in
    /// [`Self::install`] under a held meta latch (root changes of
    /// different trees race on the shared meta page).
    fn grow_root(
        &self,
        child: PageId,
        retime: Option<Timestamp>,
        adds: Vec<Entry>,
        images: &mut Vec<Page>,
    ) -> Result<PageId> {
        let new_root_id = self.pool.disk().allocate()?;
        let child_level = self.page_level(images, child)?;
        let mut root = Page::zeroed();
        root.format(new_root_id, PageType::Index, 0, child_level + 1);
        let t_low = retime.unwrap_or(Timestamp::ZERO);
        insert_entry(
            &mut root,
            &Entry {
                key_low: Vec::new(),
                t_low,
                t_high: Timestamp::MAX,
                child,
            },
        )?;
        for e in adds {
            insert_entry(&mut root, &e)?;
        }
        images.push(root);
        Ok(new_root_id)
    }

    fn find_child_entry(&self, node: &Page, child: PageId) -> Result<usize> {
        for i in 0..node.slot_count() {
            let e = decode_entry(node, i);
            if e.child == child && e.is_open() {
                return Ok(i);
            }
        }
        Err(Error::Internal(format!(
            "no current entry for child {child:?} in index node {:?}",
            node.page_id()
        )))
    }

    fn page_level(&self, images: &[Page], id: PageId) -> Result<u16> {
        if let Some(p) = images.iter().find(|p| p.page_id() == id) {
            return Ok(p.level());
        }
        let frame = self.pool.fetch(id)?;
        let level = frame.read().level();
        Ok(level)
    }

    /// Split a full index node held in `halves.current`. Returns the
    /// entries to post one level up, plus the new `t_low` for this node's
    /// own entry if it time-split.
    ///
    /// First an **index time split** at "now" when there is history to
    /// shed — the historical index node receives *every* entry (it must
    /// answer all queries for times before the split), the current node
    /// keeps only open entries. Then, if the remaining node is still more
    /// than half full (history-light nodes), a clean **key split** of the
    /// open entries.
    fn split_index_node(
        &self,
        halves: &mut Halves,
        node_t_low: Timestamp,
        node_region_low: &[u8],
    ) -> Result<(Vec<Entry>, Option<Timestamp>)> {
        if halves.right.is_some() || halves.hist.is_some() {
            return Err(Error::Internal(
                "index node split twice in one posting".into(),
            ));
        }
        let mut posted = Vec::new();
        let mut new_t_low = None;
        let all = entries(&halves.current);
        let has_historical = all.iter().any(|e| !e.is_open());
        if has_historical {
            let split_ts = self.split_time.current_split_ts();
            let hist_id = self.pool.disk().allocate()?;
            let node = &halves.current;
            let mut hist = Page::zeroed();
            hist.format(hist_id, PageType::Index, FLAG_HISTORICAL, node.level());
            let mut fresh = Page::zeroed();
            fresh.format(node.page_id(), PageType::Index, node.flags(), node.level());
            for e in &all {
                insert_entry(&mut hist, e)?;
                if e.is_open() {
                    insert_entry(&mut fresh, e)?;
                }
            }
            halves.current = fresh;
            halves.hist = Some(hist);
            halves.hist_split_ts = Some(split_ts);
            posted.push(Entry {
                key_low: node_region_low.to_vec(),
                t_low: node_t_low,
                t_high: split_ts,
                child: hist_id,
            });
            new_t_low = Some(split_ts);
        }
        if halves.current.utilization() > 0.5 {
            let open = entries(&halves.current);
            if open.len() >= 2 {
                let node = &halves.current;
                let split_at = open.len() / 2;
                let sep = open[split_at].key_low.clone();
                let right_id = self.pool.disk().allocate()?;
                let mut right = Page::zeroed();
                right.format(right_id, PageType::Index, node.flags(), node.level());
                let mut left = Page::zeroed();
                left.format(node.page_id(), PageType::Index, node.flags(), node.level());
                for (i, e) in open.iter().enumerate() {
                    if i < split_at {
                        insert_entry(&mut left, e)?;
                    } else {
                        insert_entry(&mut right, e)?;
                    }
                }
                halves.current = left;
                halves.right = Some(right);
                halves.right_sep = Some(sep.clone());
                posted.push(Entry {
                    key_low: sep,
                    t_low: new_t_low.unwrap_or(node_t_low),
                    t_high: Timestamp::MAX,
                    child: right_id,
                });
            }
        }
        if posted.is_empty() {
            return Err(Error::Internal(
                "index node full but neither time nor key split possible".into(),
            ));
        }
        Ok((posted, new_t_low))
    }

    // -- compaction -----------------------------------------------------------

    /// Every data page reachable from the root (both current and
    /// historical regions), deduplicated.
    fn data_pages(&self) -> Result<Vec<PageId>> {
        let mut out = Vec::new();
        let mut seen: HashSet<PageId> = HashSet::new();
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            let frame = self.pool.fetch(id)?;
            let g = frame.read();
            match g.page_type()? {
                PageType::Leaf => out.push(id),
                PageType::Index => {
                    for e in entries(&g) {
                        stack.push(e.child);
                    }
                }
                other => {
                    return Err(Error::Corruption(format!(
                        "TSB walk hit {other:?} page {id:?}"
                    )))
                }
            }
        }
        Ok(out)
    }

    /// Rewrite every historical data page delta-packed, in place. Unlike
    /// the chain B-tree, TSB index entries address historical pages by
    /// id, so pages keep their identity and are never merged or freed —
    /// the win is the packing itself. Runs under the structure write
    /// latch; rewrites are logged as `PageImages` in small batches so a
    /// long pass does not build one giant log record.
    pub fn compact_history(&self) -> Result<CompactionStats> {
        const BATCH: usize = 8;
        let _c = self.compacting.lock();
        let _s = self.structure.write();
        let mut stats = CompactionStats::default();
        let mut batch: Vec<Page> = Vec::new();
        for pid in self.data_pages()? {
            let page = {
                let f = self.pool.fetch(pid)?;
                let g = f.read();
                if !g.is_historical() {
                    continue;
                }
                g.clone()
            };
            if page_has_tid_marked(&page) {
                continue;
            }
            let before = page_used_bytes(&page);
            let (packed, counts) = pack_history_pages(&[&page], pid)?;
            let after = page_used_bytes(&packed);
            if after >= before {
                continue;
            }
            stats.pages_rewritten += 1;
            stats.bytes_reclaimed += (before - after) as u64;
            stats.counts.add(counts);
            batch.push(packed);
            if batch.len() >= BATCH {
                self.install(std::mem::take(&mut batch), None)?;
            }
        }
        if !batch.is_empty() {
            self.install(batch, None)?;
        }
        let m = self.pool.metrics();
        m.compaction.pages_rewritten.add(stats.pages_rewritten);
        m.compaction.bytes_reclaimed.add(stats.bytes_reclaimed);
        m.version.anchors_written.add(stats.counts.anchors);
        m.version.deltas_written.add(stats.counts.deltas);
        Ok(stats)
    }

    /// Measure the version store: every historical data page, its
    /// occupied bytes, and the versions stored there.
    pub fn history_stats(&self) -> Result<HistoryStats> {
        let _s = self.structure.read();
        let mut out = HistoryStats::default();
        for pid in self.data_pages()? {
            let f = self.pool.fetch(pid)?;
            let g = f.read();
            if !g.is_historical() {
                continue;
            }
            out.history_pages += 1;
            out.used_bytes += page_used_bytes(&g) as u64;
            for i in 0..g.slot_count() {
                out.versions += version::chain_offsets(&g, i).len() as u64;
            }
        }
        Ok(out)
    }

    fn install(&self, mut images: Vec<Page>, new_root: Option<PageId>) -> Result<()> {
        // On a root change, mutate the live meta page under a write latch
        // held from clone to write-back so concurrent root changes of
        // other trees are not lost.
        let meta_frame = self.pool.fetch(PageId(0))?;
        let mut meta_guard = None;
        if let Some(root_id) = new_root {
            let g = meta_frame.write();
            let mut meta = g.clone();
            MetaView::set_tree_root(&mut meta, self.tree_id, root_id)?;
            images.push(meta);
            meta_guard = Some(g);
        }
        let rec = LogRecord::PageImages {
            pages: images
                .iter()
                .map(|p| (p.page_id(), p.as_bytes().to_vec()))
                .collect(),
        };
        let lsn = self.wal.append(Tid::SYSTEM, NULL_LSN, &rec);
        for image in images.iter_mut() {
            let id = image.page_id();
            image.set_page_lsn(lsn);
            if id == PageId(0) {
                let g = meta_guard.as_mut().expect("meta image implies meta guard");
                **g = image.clone();
                meta_frame.mark_dirty(lsn);
            } else {
                let frame = self.pool.fetch(id)?;
                let mut g = frame.write();
                *g = image.clone();
                frame.mark_dirty(lsn);
            }
        }
        if let Some(root_id) = new_root {
            self.root.store(root_id.0, Ordering::SeqCst);
        }
        Ok(())
    }
}

/// A node mid-posting: it may have split into (current, right-by-key) or
/// (current, historical-by-time). Entry routing after a split:
///
/// * key split: by separator comparison;
/// * time split: *closed* entries (they only serve times before the split)
///   go to the historical node, open entries to the current one.
struct Halves {
    current: Page,
    right: Option<Page>,
    right_sep: Option<Vec<u8>>,
    hist: Option<Page>,
    /// Time the historical node was split off at (it serves `t <` this).
    hist_split_ts: Option<Timestamp>,
}

impl Halves {
    fn insert(&mut self, e: &Entry) -> Result<()> {
        // Closed entries serve only times before any time split: they
        // belong in the historical node when one exists.
        if !e.is_open() {
            if let Some(hist) = self.hist.as_mut() {
                return insert_entry(hist, e);
            }
        }
        // An open entry whose range starts before the index time split
        // must ALSO be visible to queries for those earlier times, which
        // route through the historical node: duplicate it there (entries
        // are immutable references, duplication is safe).
        if e.is_open() {
            if let (Some(hist), Some(hts)) = (self.hist.as_mut(), self.hist_split_ts) {
                if e.t_low < hts {
                    insert_entry(hist, e)?;
                }
            }
        }
        if let (Some(right), Some(sep)) = (self.right.as_mut(), self.right_sep.as_ref()) {
            if e.key_low.as_slice() >= sep.as_slice() {
                return insert_entry(right, e);
            }
        }
        insert_entry(&mut self.current, e)
    }
}
