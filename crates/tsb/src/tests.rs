//! TSB-tree tests, including a model-based comparison against the main
//! B-tree's page-chain implementation.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::Mutex;

use immortaldb_btree::SplitTimeSource;
use immortaldb_common::{Tid, Timestamp, TreeId, NULL_LSN};
use immortaldb_storage::buffer::BufferPool;
use immortaldb_storage::disk::DiskManager;
use immortaldb_storage::wal::Wal;
use immortaldb_storage::TimestampResolver;

use crate::TsbTree;

#[derive(Default)]
struct TestAuthority {
    committed: Mutex<HashMap<Tid, Timestamp>>,
    max_ts: Mutex<Timestamp>,
}

impl TestAuthority {
    fn commit(&self, tid: Tid, ts: Timestamp) {
        self.committed.lock().insert(tid, ts);
        let mut m = self.max_ts.lock();
        if ts > *m {
            *m = ts;
        }
    }
}

impl TimestampResolver for TestAuthority {
    fn resolve(&self, tid: Tid) -> Option<Timestamp> {
        self.committed.lock().get(&tid).copied()
    }
}

impl SplitTimeSource for TestAuthority {
    fn current_split_ts(&self) -> Timestamp {
        let m = *self.max_ts.lock();
        Timestamp::new(m.ttime + immortaldb_common::TICK_MS, 0)
    }
}

struct Env {
    pool: Arc<BufferPool>,
    wal: Arc<Wal>,
    auth: Arc<TestAuthority>,
    db: PathBuf,
    wal_path: PathBuf,
}

impl Env {
    fn new(name: &str) -> Env {
        let mut db = std::env::temp_dir();
        db.push(format!("immortal-tsb-{name}-{}.db", std::process::id()));
        let mut wal_path = std::env::temp_dir();
        wal_path.push(format!("immortal-tsb-{name}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&db);
        let _ = std::fs::remove_file(&wal_path);
        let (disk, _) = DiskManager::open(&db).unwrap();
        let wal = Arc::new(Wal::open(&wal_path).unwrap());
        let pool = Arc::new(BufferPool::new(Arc::new(disk), Arc::clone(&wal), 1024));
        Env {
            pool,
            wal,
            auth: Arc::new(TestAuthority::default()),
            db,
            wal_path,
        }
    }

    fn tree(&self) -> TsbTree {
        TsbTree::create(
            Arc::clone(&self.pool),
            Arc::clone(&self.wal),
            TreeId(50),
            Arc::clone(&self.auth) as Arc<dyn SplitTimeSource>,
        )
        .unwrap()
    }
}

impl Drop for Env {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.db);
        let _ = std::fs::remove_file(&self.wal_path);
    }
}

fn ts(t: u64, sn: u32) -> Timestamp {
    Timestamp::new(t * immortaldb_common::TICK_MS, sn)
}

fn key(k: u64) -> [u8; 8] {
    immortaldb_common::codec::key_from_u64(k)
}

#[test]
fn basic_crud_and_as_of() {
    let env = Env::new("crud");
    let t = env.tree();
    t.insert(Tid(1), NULL_LSN, b"k", b"v1", env.auth.as_ref())
        .unwrap();
    env.auth.commit(Tid(1), ts(1, 0));
    t.update(Tid(2), NULL_LSN, b"k", b"v2", env.auth.as_ref())
        .unwrap();
    env.auth.commit(Tid(2), ts(2, 0));
    t.delete(Tid(3), NULL_LSN, b"k", env.auth.as_ref()).unwrap();
    env.auth.commit(Tid(3), ts(3, 0));
    assert_eq!(t.get_current(b"k", None, env.auth.as_ref()).unwrap(), None);
    assert_eq!(
        t.get_as_of(b"k", ts(1, 5), None, env.auth.as_ref())
            .unwrap(),
        Some(b"v1".to_vec())
    );
    assert_eq!(
        t.get_as_of(b"k", ts(2, 5), None, env.auth.as_ref())
            .unwrap(),
        Some(b"v2".to_vec())
    );
    assert_eq!(
        t.get_as_of(b"k", ts(0, 5), None, env.auth.as_ref())
            .unwrap(),
        None
    );
}

#[test]
fn open_reuses_root() {
    let env = Env::new("open");
    let t = env.tree();
    t.insert(Tid(1), NULL_LSN, b"k", b"v", env.auth.as_ref())
        .unwrap();
    env.auth.commit(Tid(1), ts(1, 0));
    let root = t.root();
    drop(t);
    let t2 = TsbTree::open(
        Arc::clone(&env.pool),
        Arc::clone(&env.wal),
        TreeId(50),
        Arc::clone(&env.auth) as Arc<dyn SplitTimeSource>,
    )
    .unwrap();
    assert_eq!(t2.root(), root);
    assert_eq!(
        t2.get_current(b"k", None, env.auth.as_ref()).unwrap(),
        Some(b"v".to_vec())
    );
}

#[test]
fn deep_history_stays_directly_indexed() {
    // One hot key updated 800 times: many data time splits, index growth.
    let env = Env::new("deep");
    let t = env.tree();
    let pad = "p".repeat(40);
    t.insert(Tid(1), NULL_LSN, b"hot", b"v0", env.auth.as_ref())
        .unwrap();
    env.auth.commit(Tid(1), ts(1, 0));
    let rounds = 800u64;
    for r in 1..=rounds {
        let val = format!("v{r}-{pad}");
        t.update(
            Tid(r + 1),
            NULL_LSN,
            b"hot",
            val.as_bytes(),
            env.auth.as_ref(),
        )
        .unwrap();
        env.auth.commit(Tid(r + 1), ts(r + 1, 0));
    }
    let (tsplits, _) = t.split_counts();
    assert!(tsplits > 3, "got {tsplits} time splits");
    assert!(t.height().unwrap() >= 2, "index levels must exist");
    for r in [0u64, 1, 7, 100, 399, 500, 799, 800] {
        let expect = if r == 0 {
            b"v0".to_vec()
        } else {
            format!("v{r}-{pad}").into_bytes()
        };
        let got = t
            .get_as_of(b"hot", ts(r + 1, 5), None, env.auth.as_ref())
            .unwrap();
        assert_eq!(got, Some(expect), "as of round {r}");
    }
}

#[test]
fn wide_keyspace_key_splits_and_scans() {
    let env = Env::new("wide");
    let t = env.tree();
    let val = vec![9u8; 120];
    let n = 400u64;
    for k in 0..n {
        t.insert(Tid(k + 1), NULL_LSN, &key(k), &val, env.auth.as_ref())
            .unwrap();
        env.auth.commit(Tid(k + 1), ts(k + 1, 0));
    }
    let (_, ksplits) = t.split_counts();
    assert!(ksplits > 0);
    let items = t
        .scan_as_of(Timestamp::MAX, None, env.auth.as_ref())
        .unwrap();
    assert_eq!(items.len(), n as usize);
    for w in items.windows(2) {
        assert!(w[0].0 < w[1].0, "scan key-ordered");
    }
    // Mid-load scan: only the first half existed.
    let items = t.scan_as_of(ts(n / 2, 5), None, env.auth.as_ref()).unwrap();
    assert_eq!(items.len(), (n / 2) as usize);
}

/// The heavyweight check: random operations mirrored into (a) an
/// in-memory model and (b) the main page-chain B-tree; every AS OF
/// point query and scan must agree on all three.
#[test]
fn model_check_against_btree_and_map() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let env = Env::new("model");
    let tsb = env.tree();
    let btree = immortaldb_btree::BTree::create(
        Arc::clone(&env.pool),
        Arc::clone(&env.wal),
        TreeId(51),
        true,
        Arc::clone(&env.auth) as Arc<dyn SplitTimeSource>,
    )
    .unwrap();

    let mut rng = StdRng::seed_from_u64(0x75B);
    let mut state: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut snapshots: Vec<(u64, HashMap<u64, Vec<u8>>)> = Vec::new();
    let keyspace = 30u64;
    let pad = "f".repeat(32);
    for step in 1..=900u64 {
        let k = rng.gen_range(0..keyspace);
        let kb = key(k);
        let tid = Tid(step);
        match state.get(&k) {
            None => {
                let val = format!("v{step}-{pad}").into_bytes();
                tsb.insert(tid, NULL_LSN, &kb, &val, env.auth.as_ref())
                    .unwrap();
                btree
                    .insert(tid, NULL_LSN, &kb, &val, env.auth.as_ref())
                    .unwrap();
                state.insert(k, val);
            }
            Some(_) if rng.gen_bool(0.2) => {
                tsb.delete(tid, NULL_LSN, &kb, env.auth.as_ref()).unwrap();
                btree.delete(tid, NULL_LSN, &kb, env.auth.as_ref()).unwrap();
                state.remove(&k);
            }
            Some(_) => {
                let val = format!("v{step}-{pad}").into_bytes();
                tsb.update(tid, NULL_LSN, &kb, &val, env.auth.as_ref())
                    .unwrap();
                btree
                    .update(tid, NULL_LSN, &kb, &val, env.auth.as_ref())
                    .unwrap();
                state.insert(k, val);
            }
        }
        env.auth.commit(tid, ts(step, 0));
        if step % 120 == 0 {
            snapshots.push((step, state.clone()));
        }
    }
    let (tsplits, _) = tsb.split_counts();
    assert!(tsplits > 0, "model must exercise TSB time splits");
    for (step, snap) in &snapshots {
        let as_of = ts(*step, 5);
        for k in 0..keyspace {
            let kb = key(k);
            let via_tsb = tsb.get_as_of(&kb, as_of, None, env.auth.as_ref()).unwrap();
            let via_btree = btree
                .get_as_of(&kb, as_of, None, env.auth.as_ref())
                .unwrap();
            assert_eq!(via_tsb.as_ref(), snap.get(&k), "tsb key {k} @ {step}");
            assert_eq!(via_tsb, via_btree, "tsb vs btree key {k} @ {step}");
        }
        let items = tsb.scan_as_of(as_of, None, env.auth.as_ref()).unwrap();
        assert_eq!(items.len(), snap.len(), "tsb scan size @ {step}");
        for (kb, data) in items {
            let k = immortaldb_common::codec::u64_from_key(&kb).unwrap();
            assert_eq!(Some(&data), snap.get(&k), "tsb scan content @ {step}");
        }
    }
}

#[test]
fn uncommitted_and_own_writes() {
    let env = Env::new("own");
    let t = env.tree();
    t.insert(Tid(7), NULL_LSN, b"k", b"mine", env.auth.as_ref())
        .unwrap();
    assert_eq!(t.get_current(b"k", None, env.auth.as_ref()).unwrap(), None);
    assert_eq!(
        t.get_current(b"k", Some(Tid(7)), env.auth.as_ref())
            .unwrap(),
        Some(b"mine".to_vec())
    );
    // Duplicate insert rejected even while uncommitted (same owner).
    assert!(t
        .insert(Tid(7), NULL_LSN, b"k", b"x", env.auth.as_ref())
        .is_err());
}

#[test]
fn as_of_reads_avoid_page_chain_walks() {
    // After heavy history, a deep AS OF read through the TSB index must
    // touch far fewer pages than the page-chain walk. We proxy "pages
    // touched" by tree height + 1 vs the B-tree's chain length — checked
    // indirectly: the TSB descent never follows history pointers, so its
    // read of ancient versions still works even if we corrupt the chain.
    let env = Env::new("nochain");
    let t = env.tree();
    let pad = "q".repeat(60);
    t.insert(Tid(1), NULL_LSN, b"hot", b"v0", env.auth.as_ref())
        .unwrap();
    env.auth.commit(Tid(1), ts(1, 0));
    for r in 1..=500u64 {
        let val = format!("v{r}-{pad}");
        t.update(
            Tid(r + 1),
            NULL_LSN,
            b"hot",
            val.as_bytes(),
            env.auth.as_ref(),
        )
        .unwrap();
        env.auth.commit(Tid(r + 1), ts(r + 1, 0));
    }
    // Ancient version via the index only.
    assert_eq!(
        t.get_as_of(b"hot", ts(1, 5), None, env.auth.as_ref())
            .unwrap(),
        Some(b"v0".to_vec())
    );
}
