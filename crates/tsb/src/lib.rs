//! # Time-Split B-tree (TSB-tree)
//!
//! The temporal index of Lomet & Salzberg ("Access Methods for
//! Multiversion Data", SIGMOD 1989), which the Immortal DB paper names as
//! its next step (§3.4, §7.2): instead of sequentially scanning the
//! time-split page chain from the current page, the TSB-tree indexes the
//! collection of time-split and key-split data pages by **key-time
//! rectangles**, so an AS OF query descends directly to the one page that
//! must contain the version of interest — making historical queries
//! "equal [to] current time queries".
//!
//! ## Structure
//!
//! Data pages are the same versioned leaf pages as the main B-tree
//! (version chains, delete stubs, the four-case time split). Index nodes
//! hold entries `(key_low, [t_low, t_high), child)`, sorted by
//! `(key_low, t_low)`:
//!
//! * searching `(key, t)` picks, among entries whose time range contains
//!   `t`, the one with the greatest `key_low ≤ key`;
//! * a **data-page time split** at `ts` rewrites the child's entry to
//!   `[ts, ∞)` and posts `(key_low, [old t_low, ts), hist)`;
//! * a **data-page key split** at `sep` posts `(sep, [start_ts, ∞), right)`;
//! * a full **index node** first tries its own time split (moving entries
//!   whose ranges end before the split time to a historical index node,
//!   duplicating spanning entries — they are immutable), and otherwise
//!   key-splits, conservatively duplicating historical entries that may
//!   span the separator (a data page reachable from both halves is
//!   harmless: it simply covers a wider key range than the index rectangle
//!   that led to it).
//!
//! Logging reuses the storage layer's atomic multi-page image records,
//! so TSB structure modifications recover exactly like the main tree's.

mod tree;

pub use tree::TsbTree;

#[cfg(test)]
mod tests;
