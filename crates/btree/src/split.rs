//! Split orchestration: time splits, key splits, parent posting, root
//! growth — all logged as one atomic multi-page image record.
//!
//! The protocol (§3.3 of the paper):
//!
//! 1. Timestamp every committed version in the full page (they must be
//!    stamped to know which side of the split time they belong on).
//! 2. If the page is versioned and a time split would actually shed
//!    history, time-split at the current time: historical versions move to
//!    a fresh history page that is chained from the current page.
//! 3. If utilization still exceeds the threshold *T* (or the incoming
//!    record still does not fit), key-split the current page as a normal
//!    B+tree would, posting the separator to the parent (recursively,
//!    growing a new root when needed).
//!
//! Every page image produced (history page, rebuilt current page, new
//! right sibling, modified ancestors, meta page on root change) goes into
//! a single [`LogRecord::PageImages`] record, making the whole structure
//! modification atomic for recovery (a redo-only nested top action).

use immortaldb_common::{Error, PageId, Result, Tid, Timestamp, NULL_LSN};
use immortaldb_storage::logrec::LogRecord;
use immortaldb_storage::meta::MetaView;
use immortaldb_storage::page::{Page, PageType, REC_HDR};
use immortaldb_storage::version;
use immortaldb_storage::TimestampResolver;

use crate::tree::BTree;

impl BTree {
    /// Split whatever stands in the way of fitting `need` more bytes on
    /// the leaf responsible for `key`. Called without any latches held;
    /// takes the structure write latch.
    pub(crate) fn split_for(
        &self,
        key: &[u8],
        need: usize,
        resolver: &dyn TimestampResolver,
    ) -> Result<()> {
        let _s = self.structure.write();
        // Sample the split-time bound BEFORE the stamping pass below: a
        // transaction still in flight while we stamp leaves TID-marked
        // versions in the page, and sampling afterwards could observe it
        // retired and lift the bound above its commit timestamp — the
        // time split would then set the fresh page's start past versions
        // that stay current (case 4), stranding them from every AS OF
        // read at their commit time. Sampling first pins the bound at or
        // below any commit the stamping pass can leave unstamped.
        let desired_split_ts = self.split_time.current_split_ts();
        let max_safe_ts = self.split_time.max_safe_split_ts();
        let path = self.descend_path(key)?;
        let leaf_id = *path.last().expect("descent path never empty");
        let leaf_frame = self.pool.fetch(leaf_id)?;

        // Work on a private copy; the frame is only mutated at install time.
        let mut left: Page = {
            let mut g = leaf_frame.write();
            if need <= g.total_free() {
                return Ok(()); // a concurrent split already made room
            }
            if g.is_versioned() {
                for (t, n) in version::stamp_committed(&mut g, resolver) {
                    self.pool.metrics().ts.stamps_time_split.add(n as u64);
                    resolver.note_stamped(t, n);
                }
            }
            g.clone()
        };

        let mut images: Vec<Page> = Vec::new();

        // -- step 2: time split ------------------------------------------
        if left.is_versioned() {
            let mut split_ts = desired_split_ts;
            if split_ts <= left.start_ts() {
                split_ts = bump(left.start_ts());
            }
            // Splitting past the safe bound would strand an in-flight
            // commit's versions above the new page start; skip the time
            // split this round (the key split below still makes room) and
            // retry once the pipeline drains.
            let safe = split_ts <= max_safe_ts;
            if safe && version::time_split_gain(&left, split_ts) > 0 {
                let hist_id = self.pool.disk().allocate()?;
                let (hist, fresh, packed) = version::time_split(&left, split_ts, hist_id)?;
                images.push(hist);
                left = fresh;
                // Per-tree counter (tests depend on per-tree semantics)
                // plus the engine-wide registry.
                self.time_splits
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let m = self.pool.metrics();
                m.tree.time_splits.inc();
                m.version.anchors_written.add(packed.anchors);
                m.version.deltas_written.add(packed.deltas);
            }
        }

        // -- step 3: key split --------------------------------------------
        let needs_key_split = if left.is_versioned() {
            left.utilization() > self.split_threshold || need > left.total_free()
        } else {
            need > left.total_free()
        };
        let mut pending: Option<(Vec<u8>, PageId)> = None;
        if needs_key_split {
            if left.slot_count() < 2 {
                return Err(Error::RecordTooLarge(need));
            }
            let right_id = self.pool.disk().allocate()?;
            let (l, r, sep) = version::key_split(&left, right_id)?;
            left = l;
            pending = Some((sep, right_id));
            images.push(r);
            self.key_splits
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.pool.metrics().tree.key_splits.inc();
        }
        images.push(left);

        // -- parent posting -----------------------------------------------
        let mut new_root: Option<PageId> = None;
        if pending.is_some() {
            // Walk ancestors bottom-up. `path` is root..leaf.
            let mut level = path.len().checked_sub(2);
            let mut child_left_id = leaf_id;
            while let Some((sep, right_id)) = pending.take() {
                match level {
                    None => {
                        // Split reached the (old) root: grow the tree.
                        let new_root_id = self.pool.disk().allocate()?;
                        let child_level = self.page_level(&images, child_left_id)?;
                        let mut root = Page::zeroed();
                        root.format(new_root_id, PageType::Index, 0, child_level + 1);
                        root.insert_sorted(b"", &child_left_id.0.to_le_bytes(), 0)?;
                        root.insert_sorted(&sep, &right_id.0.to_le_bytes(), 0)?;
                        images.push(root);
                        new_root = Some(new_root_id);
                    }
                    Some(idx) => {
                        let parent_id = path[idx];
                        let parent_frame = self.pool.fetch(parent_id)?;
                        let mut parent = parent_frame.read().clone();
                        let entry_need = REC_HDR + sep.len() + 4 + 2;
                        if entry_need > parent.contiguous_free()
                            && entry_need <= parent.total_free()
                        {
                            parent.compact()?;
                        }
                        match parent.insert_sorted(&sep, &right_id.0.to_le_bytes(), 0) {
                            Ok(_) => {
                                images.push(parent);
                            }
                            Err(Error::PageFull) => {
                                let pright_id = self.pool.disk().allocate()?;
                                let (mut pl, mut pr, psep) = index_key_split(&parent, pright_id)?;
                                let target = if sep.as_slice() < psep.as_slice() {
                                    &mut pl
                                } else {
                                    &mut pr
                                };
                                target.insert_sorted(&sep, &right_id.0.to_le_bytes(), 0)?;
                                images.push(pr);
                                images.push(pl);
                                pending = Some((psep, pright_id));
                                child_left_id = parent_id;
                                level = idx.checked_sub(1);
                            }
                            Err(e) => return Err(e),
                        }
                    }
                }
            }
        }

        // Meta image on root change. The meta write latch is held from
        // clone to install: root changes of *different* trees race on the
        // meta page and the per-tree structure latch does not cover that.
        let meta_frame = self.pool.fetch(PageId(0))?;
        let mut meta_guard = None;
        if let Some(root_id) = new_root {
            let g = meta_frame.write();
            let mut meta = g.clone();
            MetaView::set_tree_root(&mut meta, self.tree_id, root_id)?;
            images.push(meta);
            meta_guard = Some(g);
        }

        // -- log once, install everywhere ----------------------------------
        let rec = LogRecord::PageImages {
            pages: images
                .iter()
                .map(|p| (p.page_id(), p.as_bytes().to_vec()))
                .collect(),
        };
        let lsn = self.wal.append(Tid::SYSTEM, NULL_LSN, &rec);
        for mut image in images {
            let id = image.page_id();
            image.set_page_lsn(lsn);
            if id == PageId(0) {
                let g = meta_guard.as_mut().expect("meta image implies meta guard");
                **g = image;
                meta_frame.mark_dirty(lsn);
            } else {
                let frame = self.pool.fetch(id)?;
                let mut g = frame.write();
                *g = image;
                frame.mark_dirty(lsn);
            }
        }
        if let Some(root_id) = new_root {
            self.set_root(root_id);
        }
        Ok(())
    }

    /// Level of a page that may live in `images` (not yet installed) or in
    /// the pool.
    fn page_level(&self, images: &[Page], id: PageId) -> Result<u16> {
        if let Some(p) = images.iter().find(|p| p.page_id() == id) {
            return Ok(p.level());
        }
        let frame = self.pool.fetch(id)?;
        let g = frame.read();
        Ok(g.level())
    }
}

/// Strictly greater timestamp (for degenerate split-time collisions).
fn bump(ts: Timestamp) -> Timestamp {
    if ts.sn + 1 < immortaldb_common::time::SN_TID_MARK {
        Timestamp::new(ts.ttime, ts.sn + 1)
    } else {
        Timestamp::new(ts.ttime + immortaldb_common::TICK_MS, 0)
    }
}

/// Key-split an index page at its entry midpoint. Returns `(new left —
/// same id, right page, separator)`. The right page keeps its first
/// entry's real key; the separator promoted to the grandparent equals it.
fn index_key_split(cur: &Page, right_id: PageId) -> Result<(Page, Page, Vec<u8>)> {
    let n = cur.slot_count();
    if n < 2 {
        return Err(Error::Internal(
            "index split of page with < 2 entries".into(),
        ));
    }
    let split_at = n / 2;
    let mut left = Page::zeroed();
    left.format(cur.page_id(), PageType::Index, 0, cur.level());
    let mut right = Page::zeroed();
    right.format(right_id, PageType::Index, 0, cur.level());
    for i in 0..n {
        let off = cur.slot(i);
        let dst = if i < split_at { &mut left } else { &mut right };
        dst.insert_sorted(cur.rec_key(off), cur.rec_data(off), cur.rec_flags(off))?;
    }
    let sep = right.rec_key(right.slot(0)).to_vec();
    Ok((left, right, sep))
}
