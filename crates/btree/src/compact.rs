//! Background history compaction: rewrite cold historical pages with
//! delta-packed version chains and merge under-filled chain neighbours,
//! returning emptied pages to the disk manager's free list.
//!
//! History pages are immutable to the rest of the engine (time splits
//! only ever *create* them), so the compactor is the single writer. A
//! pass runs under the tree's structure **write** latch — the same
//! exclusion splits use — so no reader can be mid-hop on a page the pass
//! merges away, and every key→page routing it observes is stable. Two
//! further rules keep merging safe:
//!
//! * an older chain page `Q` is merged into its newer neighbour `P` only
//!   when `Q` has exactly ONE referrer (key splits make sibling leaves
//!   share history chains; a shared page must keep its identity);
//! * the surviving page keeps its page id, so nothing that points at it
//!   (leaf history pointers, other chain pages) needs rewriting beyond
//!   the one predecessor.
//!
//! Every page the pass changes — rewritten chain pages and the
//! [`PageType::Free`] images of merged-away pages — goes into a single
//! [`LogRecord::PageImages`] record per leaf chain, so recovery and
//! replicas replay the compaction byte-for-byte, and a torn multi-page
//! write is repaired from the log like any other structure modification.

use std::collections::{BTreeMap, HashMap, HashSet};

use immortaldb_common::{PageId, Result, Tid, NULL_LSN, PAGE_SIZE};
use immortaldb_storage::logrec::LogRecord;
use immortaldb_storage::page::{Page, PageType, HEADER_SIZE};
use immortaldb_storage::version::{self, ChainVersion, PackCounts};

use crate::tree::BTree;

/// What one compaction pass over a tree did.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompactionStats {
    /// Historical pages rewritten (in place or as merge survivors).
    pub pages_rewritten: u64,
    /// Historical pages emptied by merging and freed.
    pub pages_freed: u64,
    /// Bytes of page occupancy reclaimed (packing + merging).
    pub bytes_reclaimed: u64,
    /// Full / delta records written while packing.
    pub counts: PackCounts,
}

impl CompactionStats {
    pub fn add(&mut self, other: CompactionStats) {
        self.pages_rewritten += other.pages_rewritten;
        self.pages_freed += other.pages_freed;
        self.bytes_reclaimed += other.bytes_reclaimed;
        self.counts.add(other.counts);
    }
}

/// Shape of a tree's version store (for `version.bytes_per_version`).
#[derive(Debug, Clone, Copy, Default)]
pub struct HistoryStats {
    /// Distinct historical pages reachable from current leaves.
    pub history_pages: u64,
    /// Versions stored on those pages.
    pub versions: u64,
    /// Bytes occupied on those pages (records + slots, not headers).
    pub used_bytes: u64,
}

impl HistoryStats {
    pub fn add(&mut self, other: HistoryStats) {
        self.history_pages += other.history_pages;
        self.versions += other.versions;
        self.used_bytes += other.used_bytes;
    }

    /// Mean occupied bytes per stored version (0 when empty).
    pub fn bytes_per_version(&self) -> f64 {
        if self.versions == 0 {
            0.0
        } else {
            self.used_bytes as f64 / self.versions as f64
        }
    }
}

/// Occupied bytes of a page: records plus slot array, headers excluded.
pub fn page_used_bytes(p: &Page) -> usize {
    PAGE_SIZE - HEADER_SIZE - p.total_free()
}

/// Does the page hold any TID-marked (not-yet-stamped) record? History
/// pages never should — time splits move only stamped committed
/// versions — but an unexpected one makes the page ineligible rather
/// than corrupting a timestamp.
pub fn page_has_tid_marked(p: &Page) -> bool {
    for i in 0..p.slot_count() {
        for off in version::chain_offsets(p, i) {
            if p.rec_is_tid_marked(off) {
                return true;
            }
        }
    }
    false
}

/// Rebuild one historical page from the chains of `srcs` (newest page
/// first), delta-packed, onto a fresh image that keeps `id`. Chains of
/// the same key concatenate across pages; the boundary version a time
/// split copied into both pages is deduplicated by timestamp. Fails with
/// `PageFull` when the combined content does not fit.
pub fn pack_history_pages(srcs: &[&Page], id: PageId) -> Result<(Page, PackCounts)> {
    let newest = srcs[0];
    let oldest = srcs[srcs.len() - 1];
    let mut chains: BTreeMap<Vec<u8>, Vec<ChainVersion>> = BTreeMap::new();
    for p in srcs {
        for i in 0..p.slot_count() {
            let key = p.rec_key(p.slot(i)).to_vec();
            let (vers, _) = version::materialize_chain(p, i)?;
            let chain = chains.entry(key).or_default();
            for v in vers {
                // Chains are newest-first and timestamps strictly
                // decrease, so a spanning duplicate can only collide with
                // the version appended immediately before it.
                if chain
                    .last()
                    .is_some_and(|l| l.ttime == v.ttime && l.sn == v.sn)
                {
                    continue;
                }
                chain.push(v);
            }
        }
    }
    let mut dst = Page::zeroed();
    dst.format(id, PageType::Leaf, newest.flags(), 0);
    dst.set_start_ts(oldest.start_ts());
    dst.set_end_ts(newest.end_ts());
    dst.set_history_page(oldest.history_page());
    dst.set_next_leaf(newest.next_leaf());
    let mut counts = PackCounts::default();
    for (key, vers) in &chains {
        counts.add(version::pack_chain_into(&mut dst, key, vers)?);
    }
    Ok((dst, counts))
}

impl BTree {
    /// Compact this tree's history chains: rewrite every reachable
    /// historical page delta-packed and merge single-referrer older
    /// pages into their newer neighbours, freeing the emptied pages.
    /// Runs under the structure write latch; concurrent reads and writes
    /// wait for the pass, exactly as they do for a split.
    pub fn compact_history(&self) -> Result<CompactionStats> {
        let mut stats = CompactionStats::default();
        if !self.versioned {
            return Ok(stats);
        }
        let _c = self.compacting.lock();
        let _s = self.structure.write();
        let leaves = self.leaves_with_bounds()?;

        // Walk every chain once: count in-edges (a page referenced by two
        // sibling leaves after a key split must survive with its id).
        let mut in_edges: HashMap<PageId, u32> = HashMap::new();
        let mut chains: Vec<Vec<PageId>> = Vec::new();
        let mut visited: HashSet<PageId> = HashSet::new();
        for (leaf_id, _) in &leaves {
            let mut chain = Vec::new();
            let mut h = {
                let f = self.pool.fetch(*leaf_id)?;
                let g = f.read();
                g.history_page()
            };
            while h.is_valid() {
                *in_edges.entry(h).or_default() += 1;
                if !visited.insert(h) {
                    break; // suffix already walked via a sibling leaf
                }
                chain.push(h);
                let f = self.pool.fetch(h)?;
                h = f.read().history_page();
            }
            if !chain.is_empty() {
                chains.push(chain);
            }
        }

        let mut processed: HashSet<PageId> = HashSet::new();
        for chain in chains {
            stats.add(self.compact_chain(&chain, &in_edges, &mut processed)?);
        }

        let m = self.pool.metrics();
        m.compaction.pages_rewritten.add(stats.pages_rewritten);
        m.compaction.pages_freed.add(stats.pages_freed);
        m.compaction.bytes_reclaimed.add(stats.bytes_reclaimed);
        m.version.anchors_written.add(stats.counts.anchors);
        m.version.deltas_written.add(stats.counts.deltas);
        Ok(stats)
    }

    /// Compact one leaf's history chain (newest page first). Caller holds
    /// the structure write latch and the compacting mutex.
    fn compact_chain(
        &self,
        chain: &[PageId],
        in_edges: &HashMap<PageId, u32>,
        processed: &mut HashSet<PageId>,
    ) -> Result<CompactionStats> {
        let mut stats = CompactionStats::default();
        let mut images: Vec<Page> = Vec::new();
        let mut freed: Vec<PageId> = Vec::new();

        let mut idx = 0;
        while idx < chain.len() {
            let pid = chain[idx];
            if !processed.insert(pid) {
                break; // shared suffix: a sibling's pass already took it
            }
            let page = {
                let f = self.pool.fetch(pid)?;
                let g = f.read();
                g.clone()
            };
            if page_has_tid_marked(&page) {
                idx += 1;
                continue;
            }
            let before = page_used_bytes(&page);
            let (mut packed, mut counts) = pack_history_pages(&[&page], pid)?;
            let mut absorbed_pages: Vec<Page> = Vec::new();
            // Greedily pull in older single-referrer neighbours while the
            // combined content still fits in one page.
            let mut next = idx + 1;
            while next < chain.len()
                && in_edges.get(&chain[next]).copied().unwrap_or(0) == 1
                && !processed.contains(&chain[next])
            {
                let q = {
                    let f = self.pool.fetch(chain[next])?;
                    let g = f.read();
                    g.clone()
                };
                if page_has_tid_marked(&q) {
                    break;
                }
                absorbed_pages.push(q);
                let mut srcs: Vec<&Page> = vec![&page];
                srcs.extend(absorbed_pages.iter());
                match pack_history_pages(&srcs, pid) {
                    Ok((merged, c)) => {
                        packed = merged;
                        counts = c;
                        next += 1;
                    }
                    Err(immortaldb_common::Error::PageFull) => {
                        absorbed_pages.pop();
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
            let merged_n = next - idx - 1;
            let after = page_used_bytes(&packed);
            let absorbed_before: usize = absorbed_pages.iter().map(page_used_bytes).sum();
            if merged_n == 0 && after >= before {
                idx += 1; // nothing to gain: leave the page untouched
                continue;
            }
            stats.pages_rewritten += 1;
            stats.pages_freed += merged_n as u64;
            stats.bytes_reclaimed += (before + absorbed_before).saturating_sub(after) as u64;
            stats.counts.add(counts);
            images.push(packed);
            for p in chain[idx + 1..next].iter() {
                processed.insert(*p);
                let mut free = Page::zeroed();
                free.format(*p, PageType::Free, 0, 0);
                images.push(free);
                freed.push(*p);
            }
            idx = next;
        }

        if images.is_empty() {
            return Ok(stats);
        }
        // One atomic multi-page image record per chain (same redo-only
        // nested-top-action shape as a split).
        let rec = LogRecord::PageImages {
            pages: images
                .iter()
                .map(|p| (p.page_id(), p.as_bytes().to_vec()))
                .collect(),
        };
        let lsn = self.wal.append(Tid::SYSTEM, NULL_LSN, &rec);
        for mut image in images {
            let id = image.page_id();
            image.set_page_lsn(lsn);
            let frame = self.pool.fetch(id)?;
            let mut g = frame.write();
            *g = image;
            frame.mark_dirty(lsn);
        }
        for id in freed {
            self.pool.disk().free_page(id);
        }
        Ok(stats)
    }

    /// Measure the version store: every historical page reachable from a
    /// current leaf, its occupied bytes, and the versions stored there.
    pub fn history_stats(&self) -> Result<HistoryStats> {
        let mut out = HistoryStats::default();
        if !self.versioned {
            return Ok(out);
        }
        let _s = self.structure.read();
        let leaves = self.leaves_with_bounds()?;
        let mut visited: HashSet<PageId> = HashSet::new();
        for (leaf_id, _) in &leaves {
            let mut h = {
                let f = self.pool.fetch(*leaf_id)?;
                let g = f.read();
                g.history_page()
            };
            while h.is_valid() && visited.insert(h) {
                let f = self.pool.fetch(h)?;
                let g = f.read();
                out.history_pages += 1;
                out.used_bytes += page_used_bytes(&g) as u64;
                for i in 0..g.slot_count() {
                    out.versions += version::chain_offsets(&g, i).len() as u64;
                }
                h = g.history_page();
            }
        }
        Ok(out)
    }
}
