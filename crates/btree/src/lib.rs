//! Versioned B+tree: the integrated storage structure of Immortal DB.
//!
//! Leaf pages are the versioned data pages of [`immortaldb_storage`]:
//! current and historical versions initially share a page, chained by the
//! VP field; full pages **time-split** (historical versions move to a
//! history page reachable through the page's history pointer) and, when
//! still over the utilization threshold *T*, **key-split** like a
//! conventional B+tree (§3.3 of the paper).
//!
//! The same tree type also serves unversioned (conventional) tables — the
//! persistent timestamp table and the catalog included — with in-place
//! updates and key splits only.
//!
//! Concurrency model: a tree-level structure latch (read for descents and
//! page operations, write for splits) plus per-page latches from the
//! buffer pool. This favours simplicity and matches the single-writer
//! experiments of the paper; latch crabbing would be the next step.

mod compact;
mod read;
mod split;
mod tree;

pub use compact::{
    pack_history_pages, page_has_tid_marked, page_used_bytes, CompactionStats, HistoryStats,
};
pub use read::{
    collect_chain_window, trim_version_window, HistoryVersion, ScanItem, StorageStats,
    TemporalVersion,
};
pub use tree::{BTree, FixedSplitTime, HeadVersion, SplitTimeSource, MAX_RECORD};

#[cfg(test)]
mod tests;
