//! Read paths: current reads, AS OF point lookups, AS OF full scans and
//! per-key time travel.
//!
//! The AS OF algorithm is the paper's §4.2: descend the *current* B-tree
//! by key; compare the requested time with the page's split time (its
//! `start_ts`). If the request is later, the answer is in the current
//! page's version chains; otherwise follow the history-page chain back to
//! the page whose `[start_ts, end_ts)` range contains the request — the
//! split-time check is what lets us skip pages that cannot contain the
//! version.

use immortaldb_common::{PageId, Result, Tid, Timestamp};
use immortaldb_storage::page::{Page, PageType};
use immortaldb_storage::version::{self, Visible};
use immortaldb_storage::TimestampResolver;

use crate::tree::BTree;

/// One row produced by a scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanItem {
    pub key: Vec<u8>,
    pub data: Vec<u8>,
}

/// Storage shape of a versioned tree (see [`BTree::storage_stats`]).
#[derive(Debug, Clone, Copy)]
pub struct StorageStats {
    pub current_leaves: usize,
    /// Mean raw page fill of current leaves (versions of all ages).
    pub avg_page_utilization: f64,
    /// Bytes of the newest live versions over current-leaf capacity — the
    /// quantity the paper predicts ≈ T·ln 2.
    pub current_slice_utilization: f64,
    pub history_pages: usize,
}

/// One entry of a record's version history (newest first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryVersion {
    /// Commit timestamp; `None` while the owning transaction is active.
    pub ts: Option<Timestamp>,
    /// TID for uncommitted versions.
    pub tid: Option<Tid>,
    /// `None` marks a delete stub.
    pub data: Option<Vec<u8>>,
}

/// One committed version emitted by a time-range scan
/// (`versions_between`). Uncommitted versions never appear.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemporalVersion {
    pub key: Vec<u8>,
    /// Commit timestamp of this version.
    pub ts: Timestamp,
    /// `None` marks a delete tombstone.
    pub data: Option<Vec<u8>>,
}

/// Collect the committed versions of slot `i` relevant to the time
/// window `[lo, hi]`: every version with `lo <= ts <= hi`, plus the
/// newest version below `lo` (the *base* — the state a reader at `lo`
/// would see). Chains are newest-first, so the walk stops at the first
/// below-window version. Unresolved (still-active) versions are skipped.
/// Walks with a [`version::ChainWalker`] so delta-encoded records in
/// historical pages materialize; returns the number of delta folds.
pub fn collect_chain_window(
    page: &Page,
    i: usize,
    lo: Timestamp,
    hi: Timestamp,
    resolver: &dyn TimestampResolver,
    out: &mut Vec<TemporalVersion>,
) -> Result<u64> {
    let key = page.rec_key(page.slot(i)).to_vec();
    let mut walker = version::ChainWalker::new(page, i);
    while let Some(off) = walker.step()? {
        let ts = if page.rec_is_tid_marked(off) {
            match resolver.resolve(page.rec_tid(off)) {
                Some(ts) => ts,
                None => continue, // uncommitted: invisible to temporal reads
            }
        } else {
            page.rec_timestamp(off)
        };
        if ts > hi {
            continue;
        }
        out.push(TemporalVersion {
            key: key.clone(),
            ts,
            data: if page.rec_is_stub(off) {
                None
            } else {
                Some(walker.data().to_vec())
            },
        });
        if ts < lo {
            break; // base version collected; older ones are irrelevant
        }
    }
    Ok(walker.folds)
}

/// Normalise raw time-range scan output: sort by `(key, ts)`, remove
/// spanning duplicates (time splits copy the boundary version into both
/// the history and the current page), and trim each key's below-window
/// versions to just the newest one (the base). Result is key-ascending,
/// oldest version first within a key.
pub fn trim_version_window(mut raw: Vec<TemporalVersion>, lo: Timestamp) -> Vec<TemporalVersion> {
    raw.sort_by(|a, b| a.key.cmp(&b.key).then(b.ts.cmp(&a.ts)));
    raw.dedup_by(|a, b| a.key == b.key && a.ts == b.ts);
    let mut out = Vec::with_capacity(raw.len());
    let mut i = 0;
    while i < raw.len() {
        let start = i;
        while i < raw.len() && raw[i].key == raw[start].key {
            i += 1;
        }
        // Newest-first group: keep in-window versions and one base.
        let mut kept: Vec<TemporalVersion> = Vec::new();
        for v in &raw[start..i] {
            let below = v.ts < lo;
            kept.push(v.clone());
            if below {
                break;
            }
        }
        kept.reverse();
        out.extend(kept);
    }
    out
}

impl BTree {
    /// Read the current version of `key` as seen by `own_tid` (its own
    /// uncommitted writes are visible). Opportunistically applies
    /// timestamps when the chain head is a committed TID-marked record
    /// (the paper's read trigger).
    pub fn get_current(
        &self,
        key: &[u8],
        own_tid: Option<Tid>,
        resolver: &dyn TimestampResolver,
    ) -> Result<Option<Vec<u8>>> {
        debug_assert!(self.versioned);
        let metrics = self.pool.metrics();
        let _s = self.structure.read();
        let frame = self.descend(key)?;
        // Opportunistic stamping needs the write latch; check cheaply
        // with an optimistic (latch-free) read first.
        let needs_stamp = frame.read_optimistic(metrics, |g| match g.find_slot(key) {
            Ok(i) => {
                let off = g.slot(i);
                g.rec_is_tid_marked(off)
                    && Some(g.rec_tid(off)) != own_tid
                    && resolver.resolve(g.rec_tid(off)).is_some()
            }
            Err(_) => false,
        });
        if needs_stamp {
            let mut g = frame.write();
            if let Ok(i) = g.find_slot(key) {
                metrics
                    .tree
                    .version_chain_len
                    .observe(version::chain_offsets(&g, i).len() as u64);
                for (t, n) in version::stamp_chain(&mut g, i, resolver) {
                    metrics.ts.stamps_read.add(n as u64);
                    resolver.note_stamped(t, n);
                }
                frame.mark_dirty_unlogged();
            }
        }
        Ok(frame.read_optimistic(metrics, |g| {
            let Ok(i) = g.find_slot(key) else {
                return None;
            };
            match version::visible_as_of(g, i, Timestamp::MAX, own_tid, resolver) {
                Visible::Version(off) => Some(g.rec_data(off).to_vec()),
                Visible::Deleted | Visible::NotHere => None,
            }
        }))
    }

    /// Read the version of `key` current AS OF `as_of`. Historical (AS OF)
    /// queries pass `own_tid = None`; snapshot-isolation reads pass their
    /// TID so their own uncommitted writes stay visible.
    pub fn get_as_of(
        &self,
        key: &[u8],
        as_of: Timestamp,
        own_tid: Option<Tid>,
        resolver: &dyn TimestampResolver,
    ) -> Result<Option<Vec<u8>>> {
        debug_assert!(self.versioned);
        let metrics = self.pool.metrics();
        let _s = self.structure.read();
        let frame = self.descend(key)?;
        // One optimistic step per page of the chain. `Hop` carries the
        // next history page to follow; `Done` the answer. Errors ride in
        // `Done` so a torn optimistic observation (which can make delta
        // folding fail spuriously) is discarded by seqlock validation
        // before it can surface.
        enum Step {
            Done(Result<Option<(Vec<u8>, u64)>>),
            Hop(PageId),
        }
        let step = frame.read_optimistic(metrics, |g| {
            // Own uncommitted versions live ONLY in the current page (time
            // splits keep them there, case 4), so an own write must be
            // found here even when a concurrent time split pushed the
            // page's start past the reader's snapshot.
            if let Some(own) = own_tid {
                if let Ok(i) = g.find_slot(key) {
                    if chain_has_own(g, i, own) {
                        return Step::Done(lookup_in_page(g, key, as_of, own_tid, resolver));
                    }
                }
            }
            if as_of >= g.start_ts() {
                return Step::Done(lookup_in_page(g, key, as_of, own_tid, resolver));
            }
            Step::Hop(g.history_page())
        });
        let mut hist = match step {
            Step::Done(r) => return r.map(|v| count_folds(metrics, v)),
            Step::Hop(h) => h,
        };
        // History pages are near-immutable once carved off by a time
        // split — only the background compactor (which excludes readers
        // via the structure write latch) ever rewrites one — so
        // optimistic reads here essentially never retry.
        while hist.is_valid() {
            metrics.tree.asof_hops.inc();
            let hframe = self.pool.fetch(hist)?;
            let step = hframe.read_optimistic(metrics, |hg| {
                if as_of >= hg.start_ts() {
                    Step::Done(lookup_in_page(hg, key, as_of, own_tid, resolver))
                } else {
                    Step::Hop(hg.history_page())
                }
            });
            match step {
                Step::Done(r) => return r.map(|v| count_folds(metrics, v)),
                Step::Hop(h) => hist = h,
            }
        }
        // Requested time precedes all recorded history.
        Ok(None)
    }

    /// Eager-timestamping baseline: stamp all of `tid`'s versions in
    /// `key`'s chain with `ts` and log the stamping (the cost lazy
    /// timestamping avoids). Returns the new last LSN and the number of
    /// versions stamped.
    pub fn eager_stamp(
        &self,
        tid: Tid,
        prev_lsn: immortaldb_common::Lsn,
        key: &[u8],
        ts: Timestamp,
    ) -> Result<(immortaldb_common::Lsn, u32)> {
        debug_assert!(self.versioned);
        let _s = self.structure.read();
        let frame = self.descend(key)?;
        let mut g = frame.write();
        let Ok(i) = g.find_slot(key) else {
            return Ok((prev_lsn, 0));
        };
        let rec = immortaldb_storage::logrec::LogRecord::EagerStamp {
            tree: self.tree_id,
            page: frame.page_id(),
            key: key.to_vec(),
            ts,
        };
        let lsn = self.wal.append(tid, prev_lsn, &rec);
        let mut n = 0u32;
        for off in version::chain_offsets(&g, i) {
            if g.rec_is_tid_marked(off) && g.rec_tid(off) == tid {
                g.stamp_rec(off, ts);
                n += 1;
            }
        }
        self.pool.metrics().ts.stamps_eager.add(n as u64);
        g.set_page_lsn(lsn);
        frame.mark_dirty(lsn);
        Ok((lsn, n))
    }

    /// Snapshot-version GC: prune versions of `key` older than the oldest
    /// active snapshot (`watermark`). Unlogged physical reorganisation —
    /// see [`version::prune_chain`].
    pub fn prune_snapshot_versions(&self, key: &[u8], watermark: Timestamp) -> Result<usize> {
        debug_assert!(self.versioned);
        let _s = self.structure.read();
        let frame = self.descend(key)?;
        let mut g = frame.write();
        let Ok(i) = g.find_slot(key) else {
            return Ok(0);
        };
        let n = version::prune_chain(&mut g, i, watermark);
        if n > 0 {
            frame.mark_dirty_unlogged();
        }
        Ok(n)
    }

    /// Full AS OF table scan. Leaves are enumerated with their *true* low
    /// separators (from the index structure) so that history pages shared
    /// between sibling leaves after key splits contribute each key exactly
    /// once.
    pub fn scan_as_of(
        &self,
        as_of: Timestamp,
        own_tid: Option<Tid>,
        resolver: &dyn TimestampResolver,
    ) -> Result<Vec<ScanItem>> {
        let _s = self.structure.read();
        let leaves = self.leaves_with_bounds()?;
        let mut out = Vec::new();
        for (idx, (leaf_id, low)) in leaves.iter().enumerate() {
            let upper: Option<&[u8]> = leaves.get(idx + 1).map(|(_, k)| k.as_slice());
            self.emit_leaf_as_of(*leaf_id, as_of, low, upper, own_tid, resolver, &mut out)?;
        }
        Ok(out)
    }

    /// Scan current data (versioned tree).
    pub fn scan_current(
        &self,
        own_tid: Option<Tid>,
        resolver: &dyn TimestampResolver,
    ) -> Result<Vec<ScanItem>> {
        self.scan_as_of(Timestamp::MAX, own_tid, resolver)
    }

    /// Scan a conventional (unversioned) table.
    pub fn u_scan(&self) -> Result<Vec<ScanItem>> {
        debug_assert!(!self.versioned);
        let _s = self.structure.read();
        let mut out = Vec::new();
        let mut frame = self.leftmost_leaf()?;
        loop {
            let g = frame.read();
            for i in 0..g.slot_count() {
                let off = g.slot(i);
                out.push(ScanItem {
                    key: g.rec_key(off).to_vec(),
                    data: g.rec_data(off).to_vec(),
                });
            }
            let next = g.next_leaf();
            drop(g);
            if !next.is_valid() {
                return Ok(out);
            }
            frame = self.pool.fetch(next)?;
        }
    }

    /// Complete version history of `key`, newest first, across the
    /// current page and its entire history chain. Spanning versions
    /// (copied redundantly by time splits) are deduplicated by timestamp.
    pub fn history_of(
        &self,
        key: &[u8],
        resolver: &dyn TimestampResolver,
    ) -> Result<Vec<HistoryVersion>> {
        debug_assert!(self.versioned);
        let _s = self.structure.read();
        let frame = self.descend(key)?;
        let mut out: Vec<HistoryVersion> = Vec::new();
        let mut page_id = frame.page_id();
        let mut last_ts: Option<Timestamp> = None;
        loop {
            let f = self.pool.fetch(page_id)?;
            let g = f.read();
            if let Ok(i) = g.find_slot(key) {
                let mut walker = version::ChainWalker::new(&g, i);
                while let Some(off) = walker.step()? {
                    let (ts, tid) = if g.rec_is_tid_marked(off) {
                        match resolver.resolve(g.rec_tid(off)) {
                            Some(ts) => (Some(ts), None),
                            None => (None, Some(g.rec_tid(off))),
                        }
                    } else {
                        (Some(g.rec_timestamp(off)), None)
                    };
                    if ts.is_some() && ts == last_ts {
                        continue; // spanning duplicate
                    }
                    if let Some(t) = ts {
                        last_ts = Some(t);
                    }
                    out.push(HistoryVersion {
                        ts,
                        tid,
                        data: if g.rec_is_stub(off) {
                            None
                        } else {
                            Some(walker.data().to_vec())
                        },
                    });
                }
                if walker.folds > 0 {
                    self.pool.metrics().version.delta_folds.add(walker.folds);
                }
            }
            let hist = g.history_page();
            if !hist.is_valid() {
                self.pool
                    .metrics()
                    .tree
                    .version_chain_len
                    .observe(out.len() as u64);
                return Ok(out);
            }
            page_id = hist;
        }
    }

    /// Time-range scan over the page chains: every committed version with
    /// a commit timestamp in `[lo, hi]`, plus each key's base version
    /// (newest below `lo`), across the whole tree. Each leaf's history
    /// chain is walked once, stopping at the first page whose time range
    /// covers `lo` — pages older than that cannot contribute.
    pub fn versions_between(
        &self,
        lo: Timestamp,
        hi: Timestamp,
        resolver: &dyn TimestampResolver,
    ) -> Result<Vec<TemporalVersion>> {
        debug_assert!(self.versioned);
        let _s = self.structure.read();
        let leaves = self.leaves_with_bounds()?;
        let mut raw = Vec::new();
        for (idx, (leaf_id, low)) in leaves.iter().enumerate() {
            let upper: Option<&[u8]> = leaves.get(idx + 1).map(|(_, k)| k.as_slice());
            let mut page_id = *leaf_id;
            loop {
                let frame = self.pool.fetch(page_id)?;
                let g = frame.read();
                for i in 0..g.slot_count() {
                    let off = g.slot(i);
                    let key = g.rec_key(off);
                    if key < low.as_slice() {
                        continue;
                    }
                    if let Some(up) = upper {
                        if key >= up {
                            break;
                        }
                    }
                    let folds = collect_chain_window(&g, i, lo, hi, resolver, &mut raw)?;
                    if folds > 0 {
                        self.pool.metrics().version.delta_folds.add(folds);
                    }
                }
                // The page covering `lo` holds every base version; older
                // chain pages cannot contribute to the window.
                let done = g.start_ts() <= lo;
                let hist = g.history_page();
                drop(g);
                if done || !hist.is_valid() {
                    break;
                }
                self.pool.metrics().tree.asof_hops.inc();
                page_id = hist;
            }
        }
        Ok(trim_version_window(raw, lo))
    }

    /// Storage statistics over the *current* leaves, for the
    /// utilization-vs-threshold ablation (the §3.3 claim that a key-split
    /// threshold *T* yields single-time-slice utilization ≈ T·ln 2).
    pub fn storage_stats(&self) -> Result<StorageStats> {
        let _s = self.structure.read();
        let leaves = self.leaves_with_bounds()?;
        let mut util_sum = 0.0;
        let mut slice_bytes = 0usize;
        let mut history = std::collections::HashSet::new();
        for (leaf_id, _) in &leaves {
            let frame = self.pool.fetch(*leaf_id)?;
            let g = frame.read();
            util_sum += g.utilization();
            // The "current time slice": the newest live version of each
            // key — what a current-state query would touch.
            for i in 0..g.slot_count() {
                let off = g.slot(i);
                if !g.rec_is_stub(off) {
                    slice_bytes += g.rec_size(off) + 2; // + slot
                }
            }
            let mut hist = g.history_page();
            drop(g);
            // History pages are shared between sibling leaves after key
            // splits; dedup by page id.
            while hist.is_valid() && history.insert(hist) {
                let hframe = self.pool.fetch(hist)?;
                hist = hframe.read().history_page();
            }
        }
        let n = leaves.len();
        let usable = immortaldb_common::PAGE_SIZE - immortaldb_storage::page::HEADER_SIZE;
        Ok(StorageStats {
            current_leaves: n,
            avg_page_utilization: util_sum / n.max(1) as f64,
            current_slice_utilization: slice_bytes as f64 / (n.max(1) * usable) as f64,
            history_pages: history.len(),
        })
    }

    /// Vacuum support (§2.2): stamp every committed TID-marked record in
    /// every *current* leaf (historical pages never hold TID marks — only
    /// committed, stamped versions move there). Returns the number of
    /// records stamped. After the caller also checkpoints, no persistent
    /// timestamp-table entry for a pre-existing transaction is needed any
    /// more.
    pub fn stamp_all(&self, resolver: &dyn TimestampResolver) -> Result<u64> {
        let _s = self.structure.read();
        let leaves = self.leaves_with_bounds()?;
        let mut stamped = 0u64;
        for (leaf_id, _) in leaves {
            let frame = self.pool.fetch(leaf_id)?;
            let mut g = frame.write();
            let counts = version::stamp_committed(&mut g, resolver);
            if !counts.is_empty() {
                frame.mark_dirty_unlogged();
            }
            for (tid, n) in counts {
                resolver.note_stamped(tid, n);
                stamped += n as u64;
            }
        }
        self.pool.metrics().ts.stamps_vacuum.add(stamped);
        Ok(stamped)
    }

    /// All current leaves, left to right, each with its true low
    /// separator key (empty = unbounded).
    pub(crate) fn leaves_with_bounds(&self) -> Result<Vec<(PageId, Vec<u8>)>> {
        let mut out = Vec::new();
        self.collect_leaves(self.root(), Vec::new(), &mut out)?;
        Ok(out)
    }

    fn collect_leaves(
        &self,
        page_id: PageId,
        low: Vec<u8>,
        out: &mut Vec<(PageId, Vec<u8>)>,
    ) -> Result<()> {
        let frame = self.pool.fetch(page_id)?;
        let g = frame.read();
        match g.page_type()? {
            PageType::Leaf => {
                out.push((page_id, low));
                Ok(())
            }
            PageType::Index => {
                let n = g.slot_count();
                let children: Vec<(Vec<u8>, PageId)> = (0..n)
                    .map(|i| {
                        let off = g.slot(i);
                        (g.rec_key(off).to_vec(), BTree::index_child(&g, i))
                    })
                    .collect();
                drop(g);
                for (i, (entry_key, child)) in children.into_iter().enumerate() {
                    let child_low = if i == 0 { low.clone() } else { entry_key };
                    self.collect_leaves(child, child_low, out)?;
                }
                Ok(())
            }
            other => Err(immortaldb_common::Error::Corruption(format!(
                "scan hit {other:?} page {page_id:?}"
            ))),
        }
    }

    /// Emit all keys of `leaf` (or the history page covering `as_of`)
    /// within `[low, upper)` that have a visible version at `as_of`.
    #[allow(clippy::too_many_arguments)]
    fn emit_leaf_as_of(
        &self,
        leaf_id: PageId,
        as_of: Timestamp,
        low: &[u8],
        upper: Option<&[u8]>,
        own_tid: Option<Tid>,
        resolver: &dyn TimestampResolver,
        out: &mut Vec<ScanItem>,
    ) -> Result<()> {
        // Keys whose OWN uncommitted version (visible regardless of the
        // page time range) was already emitted from the current leaf.
        let mut own_emitted: Vec<Vec<u8>> = Vec::new();
        if let Some(own) = own_tid {
            let frame = self.pool.fetch(leaf_id)?;
            let g = frame.read();
            if as_of < g.start_ts() {
                // The scan will route to history below; surface own
                // writes (and own deletes) from the current page first.
                for i in 0..g.slot_count() {
                    let off = g.slot(i);
                    let key = g.rec_key(off);
                    if key < low {
                        continue;
                    }
                    if let Some(up) = upper {
                        if key >= up {
                            break;
                        }
                    }
                    if chain_has_own(&g, i, own) {
                        own_emitted.push(key.to_vec());
                        if let Visible::Version(voff) =
                            version::visible_as_of(&g, i, as_of, own_tid, resolver)
                        {
                            out.push(ScanItem {
                                key: key.to_vec(),
                                data: g.rec_data(voff).to_vec(),
                            });
                        }
                    }
                }
            }
        }
        let mut page_id = leaf_id;
        loop {
            let frame = self.pool.fetch(page_id)?;
            let g = frame.read();
            if as_of >= g.start_ts() {
                for i in 0..g.slot_count() {
                    let off = g.slot(i);
                    let key = g.rec_key(off);
                    if key < low {
                        continue;
                    }
                    if let Some(up) = upper {
                        if key >= up {
                            break;
                        }
                    }
                    if own_emitted.iter().any(|k| k.as_slice() == key) {
                        continue;
                    }
                    if let Visible::Version(voff) =
                        version::visible_as_of(&g, i, as_of, own_tid, resolver)
                    {
                        let (data, folds) = version::materialize_at(&g, i, voff)?;
                        if folds > 0 {
                            self.pool.metrics().version.delta_folds.add(folds);
                        }
                        out.push(ScanItem {
                            key: key.to_vec(),
                            data,
                        });
                    }
                }
                // Keep key order deterministic when the own-write pass
                // prepended items.
                if !own_emitted.is_empty() {
                    out.sort_by(|a, b| a.key.cmp(&b.key));
                }
                return Ok(());
            }
            let hist = g.history_page();
            if !hist.is_valid() {
                if !own_emitted.is_empty() {
                    out.sort_by(|a, b| a.key.cmp(&b.key));
                }
                return Ok(()); // nothing recorded this far back
            }
            self.pool.metrics().tree.asof_hops.inc();
            page_id = hist;
        }
    }
}

/// Does the chain at slot `i` contain a version TID-marked by `own`?
fn chain_has_own(page: &Page, i: usize, own: Tid) -> bool {
    version::chain_offsets(page, i)
        .iter()
        .any(|&off| page.rec_is_tid_marked(off) && page.rec_tid(off) == own)
}

/// Point lookup within a single (current or historical) page. Returns
/// the materialized data plus the number of delta folds the
/// materialization performed (0 for full records).
fn lookup_in_page(
    page: &Page,
    key: &[u8],
    as_of: Timestamp,
    own_tid: Option<Tid>,
    resolver: &dyn TimestampResolver,
) -> Result<Option<(Vec<u8>, u64)>> {
    let Ok(i) = page.find_slot(key) else {
        return Ok(None);
    };
    match version::visible_as_of(page, i, as_of, own_tid, resolver) {
        Visible::Version(off) => Some(version::materialize_at(page, i, off)).transpose(),
        Visible::Deleted | Visible::NotHere => Ok(None),
    }
}

/// Record delta folds from a [`lookup_in_page`] result and strip the
/// fold count off. (Recorded outside the optimistic closure so retried
/// attempts don't double-count.)
fn count_folds(
    metrics: &immortaldb_obs::MetricsRegistry,
    v: Option<(Vec<u8>, u64)>,
) -> Option<Vec<u8>> {
    v.map(|(data, folds)| {
        if folds > 0 {
            metrics.version.delta_folds.add(folds);
        }
        data
    })
}
