//! Unit tests for the versioned B+tree.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::Mutex;

use immortaldb_common::{Result, Tid, Timestamp, TreeId, NULL_LSN};
use immortaldb_storage::buffer::BufferPool;
use immortaldb_storage::disk::DiskManager;
use immortaldb_storage::wal::Wal;
use immortaldb_storage::TimestampResolver;

use crate::tree::{BTree, HeadVersion, SplitTimeSource};

/// Resolver + split-time source for tests: commits are registered
/// explicitly; the split time is always greater than any registered
/// commit.
#[derive(Default)]
pub(crate) struct TestAuthority {
    committed: Mutex<HashMap<Tid, Timestamp>>,
    stamped: Mutex<HashMap<Tid, u32>>,
    max_ts: Mutex<Timestamp>,
}

impl TestAuthority {
    pub fn commit(&self, tid: Tid, ts: Timestamp) {
        self.committed.lock().insert(tid, ts);
        let mut m = self.max_ts.lock();
        if ts > *m {
            *m = ts;
        }
    }

    pub fn stamped_count(&self, tid: Tid) -> u32 {
        self.stamped.lock().get(&tid).copied().unwrap_or(0)
    }
}

impl TimestampResolver for TestAuthority {
    fn resolve(&self, tid: Tid) -> Option<Timestamp> {
        self.committed.lock().get(&tid).copied()
    }
    fn note_stamped(&self, tid: Tid, n: u32) {
        *self.stamped.lock().entry(tid).or_insert(0) += n;
    }
}

impl SplitTimeSource for TestAuthority {
    fn current_split_ts(&self) -> Timestamp {
        let m = *self.max_ts.lock();
        Timestamp::new(m.ttime + immortaldb_common::TICK_MS, 0)
    }
}

pub(crate) struct Env {
    pub pool: Arc<BufferPool>,
    pub wal: Arc<Wal>,
    pub auth: Arc<TestAuthority>,
    db: PathBuf,
    wal_path: PathBuf,
}

impl Env {
    pub fn new(name: &str) -> Env {
        let mut db = std::env::temp_dir();
        db.push(format!("immortal-bt-{name}-{}.db", std::process::id()));
        let mut wal_path = std::env::temp_dir();
        wal_path.push(format!("immortal-bt-{name}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&db);
        let _ = std::fs::remove_file(&wal_path);
        let (disk, _) = DiskManager::open(&db).unwrap();
        let wal = Arc::new(Wal::open(&wal_path).unwrap());
        let pool = Arc::new(BufferPool::new(Arc::new(disk), Arc::clone(&wal), 256));
        Env {
            pool,
            wal,
            auth: Arc::new(TestAuthority::default()),
            db,
            wal_path,
        }
    }

    pub fn tree(&self, id: u32, versioned: bool) -> BTree {
        BTree::create(
            Arc::clone(&self.pool),
            Arc::clone(&self.wal),
            TreeId(id),
            versioned,
            Arc::clone(&self.auth) as Arc<dyn SplitTimeSource>,
        )
        .unwrap()
    }
}

impl Drop for Env {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.db);
        let _ = std::fs::remove_file(&self.wal_path);
    }
}

fn ts(t: u64, sn: u32) -> Timestamp {
    Timestamp::new(t * immortaldb_common::TICK_MS, sn)
}

/// Insert + commit a single-op transaction.
fn put(tree: &BTree, env: &Env, tid: u64, key: &[u8], val: &[u8], at: Timestamp) -> Result<()> {
    tree.insert(Tid(tid), NULL_LSN, key, val, env.auth.as_ref())?;
    env.auth.commit(Tid(tid), at);
    Ok(())
}

fn upd(tree: &BTree, env: &Env, tid: u64, key: &[u8], val: &[u8], at: Timestamp) -> Result<()> {
    tree.update(Tid(tid), NULL_LSN, key, val, env.auth.as_ref())?;
    env.auth.commit(Tid(tid), at);
    Ok(())
}

#[test]
fn create_open_roundtrip() {
    let env = Env::new("createopen");
    let t = env.tree(20, true);
    let root = t.root();
    drop(t);
    let t2 = BTree::open(
        Arc::clone(&env.pool),
        Arc::clone(&env.wal),
        TreeId(20),
        true,
        Arc::clone(&env.auth) as Arc<dyn SplitTimeSource>,
    )
    .unwrap();
    assert_eq!(t2.root(), root);
    assert!(BTree::open(
        Arc::clone(&env.pool),
        Arc::clone(&env.wal),
        TreeId(999),
        true,
        Arc::clone(&env.auth) as Arc<dyn SplitTimeSource>,
    )
    .is_err());
}

#[test]
fn insert_get_update_delete_cycle() {
    let env = Env::new("cycle");
    let t = env.tree(20, true);
    put(&t, &env, 1, b"k", b"v1", ts(1, 0)).unwrap();
    assert_eq!(
        t.get_current(b"k", None, env.auth.as_ref()).unwrap(),
        Some(b"v1".to_vec())
    );
    upd(&t, &env, 2, b"k", b"v2", ts(2, 0)).unwrap();
    assert_eq!(
        t.get_current(b"k", None, env.auth.as_ref()).unwrap(),
        Some(b"v2".to_vec())
    );
    t.delete(Tid(3), NULL_LSN, b"k", env.auth.as_ref()).unwrap();
    env.auth.commit(Tid(3), ts(3, 0));
    assert_eq!(t.get_current(b"k", None, env.auth.as_ref()).unwrap(), None);
    // AS OF still sees every state.
    assert_eq!(
        t.get_as_of(b"k", ts(1, 5), None, env.auth.as_ref())
            .unwrap(),
        Some(b"v1".to_vec())
    );
    assert_eq!(
        t.get_as_of(b"k", ts(2, 5), None, env.auth.as_ref())
            .unwrap(),
        Some(b"v2".to_vec())
    );
    assert_eq!(
        t.get_as_of(b"k", ts(3, 5), None, env.auth.as_ref())
            .unwrap(),
        None
    );
    assert_eq!(
        t.get_as_of(b"k", ts(0, 5), None, env.auth.as_ref())
            .unwrap(),
        None
    );
    // Re-insert after delete chains onto the stub.
    put(&t, &env, 4, b"k", b"v3", ts(4, 0)).unwrap();
    assert_eq!(
        t.get_current(b"k", None, env.auth.as_ref()).unwrap(),
        Some(b"v3".to_vec())
    );
    assert_eq!(
        t.get_as_of(b"k", ts(3, 5), None, env.auth.as_ref())
            .unwrap(),
        None
    );
}

#[test]
fn duplicate_insert_and_missing_update_rejected() {
    let env = Env::new("dup");
    let t = env.tree(20, true);
    put(&t, &env, 1, b"k", b"v", ts(1, 0)).unwrap();
    assert!(matches!(
        t.insert(Tid(2), NULL_LSN, b"k", b"v2", env.auth.as_ref()),
        Err(immortaldb_common::Error::DuplicateKey)
    ));
    assert!(matches!(
        t.update(Tid(2), NULL_LSN, b"missing", b"v", env.auth.as_ref()),
        Err(immortaldb_common::Error::KeyNotFound)
    ));
    assert!(matches!(
        t.delete(Tid(2), NULL_LSN, b"missing", env.auth.as_ref()),
        Err(immortaldb_common::Error::KeyNotFound)
    ));
}

#[test]
fn own_uncommitted_writes_visible_only_to_owner() {
    let env = Env::new("ownwrites");
    let t = env.tree(20, true);
    t.insert(Tid(7), NULL_LSN, b"k", b"mine", env.auth.as_ref())
        .unwrap();
    assert_eq!(
        t.get_current(b"k", Some(Tid(7)), env.auth.as_ref())
            .unwrap(),
        Some(b"mine".to_vec())
    );
    assert_eq!(t.get_current(b"k", None, env.auth.as_ref()).unwrap(), None);
    assert_eq!(
        t.get_current(b"k", Some(Tid(9)), env.auth.as_ref())
            .unwrap(),
        None
    );
}

#[test]
fn head_version_reports_states() {
    let env = Env::new("head");
    let t = env.tree(20, true);
    assert_eq!(
        t.head_version(b"k", env.auth.as_ref()).unwrap(),
        HeadVersion::NotFound
    );
    t.insert(Tid(5), NULL_LSN, b"k", b"v", env.auth.as_ref())
        .unwrap();
    assert_eq!(
        t.head_version(b"k", env.auth.as_ref()).unwrap(),
        HeadVersion::Uncommitted {
            tid: Tid(5),
            stub: false
        }
    );
    env.auth.commit(Tid(5), ts(2, 0));
    assert_eq!(
        t.head_version(b"k", env.auth.as_ref()).unwrap(),
        HeadVersion::Committed {
            ts: ts(2, 0),
            stub: false
        }
    );
}

#[test]
fn key_splits_preserve_order_and_content() {
    let env = Env::new("keysplit");
    let t = env.tree(20, true);
    let val = vec![7u8; 300];
    let n = 300u64;
    for i in 0..n {
        let key = immortaldb_common::codec::key_from_u64(i * 7919 % n);
        put(&t, &env, i + 1, &key, &val, ts(i + 1, 0)).unwrap();
    }
    let (_, key_splits) = t.split_counts();
    assert!(key_splits > 0, "expected key splits for 300 x 300B records");
    let items = t.scan_current(None, env.auth.as_ref()).unwrap();
    assert_eq!(items.len(), n as usize);
    for w in items.windows(2) {
        assert!(w[0].key < w[1].key, "scan must be key-ordered");
    }
    for i in 0..n {
        let key = immortaldb_common::codec::key_from_u64(i);
        assert_eq!(
            t.get_current(&key, None, env.auth.as_ref()).unwrap(),
            Some(val.clone())
        );
    }
}

#[test]
fn time_splits_keep_full_history_queryable() {
    let env = Env::new("timesplit");
    let t = env.tree(20, true);
    let key = b"hot";
    // Version v0 at t=1, then 400 updates. Values are distinguishable.
    put(&t, &env, 1, key, b"v0", ts(1, 0)).unwrap();
    let rounds = 400u64;
    for r in 1..=rounds {
        let val = format!("v{r}");
        upd(&t, &env, r + 1, key, val.as_bytes(), ts(r + 1, 0)).unwrap();
    }
    let (time_splits, _) = t.split_counts();
    assert!(time_splits > 0, "400 versions of one key must time-split");
    // Every historical state is still reachable.
    for r in [0u64, 1, 5, 50, 137, 399, 400] {
        let expect = format!("v{r}");
        let got = t
            .get_as_of(key, ts(r + 1, 5), None, env.auth.as_ref())
            .unwrap();
        assert_eq!(got, Some(expect.into_bytes()), "as of round {r}");
    }
    assert_eq!(
        t.get_as_of(key, ts(0, 5), None, env.auth.as_ref()).unwrap(),
        None
    );
}

#[test]
fn scan_as_of_reconstructs_past_states() {
    let env = Env::new("scanasof");
    let t = env.tree(20, true);
    // 30 keys inserted at time 1..30, each updated at time 100+i.
    for i in 0..30u64 {
        let key = immortaldb_common::codec::key_from_u64(i);
        put(
            &t,
            &env,
            i + 1,
            &key,
            format!("a{i}").as_bytes(),
            ts(i + 1, 0),
        )
        .unwrap();
    }
    for i in 0..30u64 {
        let key = immortaldb_common::codec::key_from_u64(i);
        upd(
            &t,
            &env,
            100 + i,
            &key,
            format!("b{i}").as_bytes(),
            ts(100 + i, 0),
        )
        .unwrap();
    }
    // As of time 15.5: keys 0..=14 exist with "a" values.
    let items = t.scan_as_of(ts(15, 5), None, env.auth.as_ref()).unwrap();
    assert_eq!(items.len(), 15);
    for (i, item) in items.iter().enumerate() {
        assert_eq!(item.data, format!("a{i}").into_bytes());
    }
    // As of time 114.5: all 30 keys, first 15 updated.
    let items = t.scan_as_of(ts(114, 5), None, env.auth.as_ref()).unwrap();
    assert_eq!(items.len(), 30);
    assert_eq!(items[14].data, b"b14".to_vec());
    assert_eq!(items[15].data, b"a15".to_vec());
    // Current state: all "b".
    let items = t.scan_current(None, env.auth.as_ref()).unwrap();
    assert_eq!(items.len(), 30);
    assert!(items
        .iter()
        .enumerate()
        .all(|(i, it)| it.data == format!("b{i}").into_bytes()));
}

#[test]
fn scan_as_of_with_shared_history_after_key_splits() {
    // Build enough versions that pages both time-split and key-split,
    // then verify old states scan without duplicates or losses.
    let env = Env::new("sharedhist");
    let t = env.tree(20, true);
    let pad = "x".repeat(90);
    let n = 120u64;
    let mut tid = 0u64;
    let mut clock = 0u64;
    let stamp = |tid: &mut u64, clock: &mut u64| {
        *tid += 1;
        *clock += 1;
        (Tid(*tid), ts(*clock, 0))
    };
    for i in 0..n {
        let key = immortaldb_common::codec::key_from_u64(i);
        let (td, at) = stamp(&mut tid, &mut clock);
        t.insert(
            td,
            NULL_LSN,
            &key,
            format!("i{i}-{pad}").as_bytes(),
            env.auth.as_ref(),
        )
        .unwrap();
        env.auth.commit(td, at);
    }
    let t_after_insert = clock;
    for round in 0..6u64 {
        for i in 0..n {
            let key = immortaldb_common::codec::key_from_u64(i);
            let (td, at) = stamp(&mut tid, &mut clock);
            t.update(
                td,
                NULL_LSN,
                &key,
                format!("u{round}-{i}-{pad}").as_bytes(),
                env.auth.as_ref(),
            )
            .unwrap();
            env.auth.commit(td, at);
        }
    }
    let (tsplits, ksplits) = t.split_counts();
    assert!(
        tsplits > 0 && ksplits > 0,
        "want both split kinds: {tsplits}/{ksplits}"
    );
    // As of the end of the insert phase: every key with its "i" value,
    // exactly once.
    let items = t
        .scan_as_of(ts(t_after_insert, 5), None, env.auth.as_ref())
        .unwrap();
    assert_eq!(items.len(), n as usize);
    let mut seen = std::collections::HashSet::new();
    for (i, item) in items.iter().enumerate() {
        assert!(seen.insert(item.key.clone()), "duplicate key in scan");
        assert_eq!(item.data, format!("i{i}-{pad}").into_bytes());
    }
    // As of round-3 completion.
    let t_round3 = t_after_insert + 4 * n;
    let items = t
        .scan_as_of(ts(t_round3, 5), None, env.auth.as_ref())
        .unwrap();
    assert_eq!(items.len(), n as usize);
    for (i, item) in items.iter().enumerate() {
        assert_eq!(item.data, format!("u3-{i}-{pad}").into_bytes());
    }
}

#[test]
fn history_of_lists_all_versions_newest_first() {
    let env = Env::new("history");
    let t = env.tree(20, true);
    put(&t, &env, 1, b"k", b"v1", ts(1, 0)).unwrap();
    upd(&t, &env, 2, b"k", b"v2", ts(2, 0)).unwrap();
    t.delete(Tid(3), NULL_LSN, b"k", env.auth.as_ref()).unwrap();
    env.auth.commit(Tid(3), ts(3, 0));
    let h = t.history_of(b"k", env.auth.as_ref()).unwrap();
    assert_eq!(h.len(), 3);
    assert_eq!(h[0].data, None); // stub
    assert_eq!(h[1].data, Some(b"v2".to_vec()));
    assert_eq!(h[2].data, Some(b"v1".to_vec()));
    assert!(h[0].ts.unwrap() > h[1].ts.unwrap());
}

#[test]
fn history_of_dedups_spanning_versions_across_splits() {
    let env = Env::new("histdedup");
    let t = env.tree(20, true);
    let pad = "y".repeat(48);
    put(&t, &env, 1, b"k", b"v0", ts(1, 0)).unwrap();
    for r in 1..=600u64 {
        upd(
            &t,
            &env,
            r + 1,
            b"k",
            format!("v{r}-{pad}").as_bytes(),
            ts(r + 1, 0),
        )
        .unwrap();
    }
    let (tsplits, _) = t.split_counts();
    assert!(tsplits >= 2, "got {tsplits} time splits");
    let h = t.history_of(b"k", env.auth.as_ref()).unwrap();
    assert_eq!(
        h.len(),
        601,
        "each version exactly once despite redundant copies"
    );
    for w in h.windows(2) {
        assert!(w[0].ts.unwrap() > w[1].ts.unwrap());
    }
}

#[test]
fn update_trigger_stamps_prior_versions() {
    let env = Env::new("stamptrigger");
    let t = env.tree(20, true);
    t.insert(Tid(1), NULL_LSN, b"k", b"v1", env.auth.as_ref())
        .unwrap();
    env.auth.commit(Tid(1), ts(1, 0));
    assert_eq!(env.auth.stamped_count(Tid(1)), 0);
    // The update visits the chain and stamps the committed prior version.
    t.update(Tid(2), NULL_LSN, b"k", b"v2", env.auth.as_ref())
        .unwrap();
    assert_eq!(env.auth.stamped_count(Tid(1)), 1);
}

#[test]
fn read_trigger_stamps_chain_head() {
    let env = Env::new("readtrigger");
    let t = env.tree(20, true);
    t.insert(Tid(1), NULL_LSN, b"k", b"v1", env.auth.as_ref())
        .unwrap();
    env.auth.commit(Tid(1), ts(1, 0));
    let _ = t.get_current(b"k", None, env.auth.as_ref()).unwrap();
    assert_eq!(env.auth.stamped_count(Tid(1)), 1);
    // Second read does not re-stamp.
    let _ = t.get_current(b"k", None, env.auth.as_ref()).unwrap();
    assert_eq!(env.auth.stamped_count(Tid(1)), 1);
}

#[test]
fn unversioned_crud_and_splits() {
    let env = Env::new("unversioned");
    let t = env.tree(21, false);
    let val = vec![3u8; 200];
    for i in 0..400u64 {
        let key = immortaldb_common::codec::key_from_u64(i);
        t.u_insert(Tid(1), NULL_LSN, &key, &val).unwrap();
    }
    assert_eq!(t.u_count().unwrap(), 400);
    let key = immortaldb_common::codec::key_from_u64(123);
    assert_eq!(t.u_get(&key).unwrap(), Some(val.clone()));
    t.u_update(Tid(1), NULL_LSN, &key, b"new").unwrap();
    assert_eq!(t.u_get(&key).unwrap(), Some(b"new".to_vec()));
    t.u_delete(Tid(1), NULL_LSN, &key).unwrap();
    assert_eq!(t.u_get(&key).unwrap(), None);
    assert_eq!(t.u_count().unwrap(), 399);
    let items = t.u_scan().unwrap();
    assert_eq!(items.len(), 399);
    for w in items.windows(2) {
        assert!(w[0].key < w[1].key);
    }
    assert!(matches!(
        t.u_insert(
            Tid(1),
            NULL_LSN,
            &immortaldb_common::codec::key_from_u64(0),
            &val
        ),
        Err(immortaldb_common::Error::DuplicateKey)
    ));
}

#[test]
fn record_size_limit_enforced() {
    let env = Env::new("toolarge");
    let t = env.tree(20, true);
    let huge = vec![0u8; crate::tree::MAX_RECORD + 1];
    assert!(matches!(
        t.insert(Tid(1), NULL_LSN, b"k", &huge, env.auth.as_ref()),
        Err(immortaldb_common::Error::RecordTooLarge(_))
    ));
}

#[test]
fn leaves_with_bounds_are_ordered_separators() {
    let env = Env::new("bounds");
    let t = env.tree(20, true);
    let val = vec![9u8; 400];
    for i in 0..200u64 {
        let key = immortaldb_common::codec::key_from_u64(i);
        put(&t, &env, i + 1, &key, &val, ts(i + 1, 0)).unwrap();
    }
    let leaves = t.leaves_with_bounds().unwrap();
    assert!(leaves.len() > 1);
    assert!(leaves[0].1.is_empty(), "first leaf unbounded below");
    for w in leaves.windows(2) {
        assert!(w[0].1 < w[1].1, "separators strictly increasing");
    }
    // Each leaf's first key >= its separator.
    for (id, low) in &leaves {
        let frame = env.pool.fetch(*id).unwrap();
        let g = frame.read();
        if g.slot_count() > 0 {
            assert!(g.rec_key(g.slot(0)) >= low.as_slice());
        }
    }
}

/// Model-based check: random inserts/updates/deletes with a commit per
/// operation; AS OF answers must match an in-memory model at every
/// historical instant.
#[test]
fn model_check_as_of_queries() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let env = Env::new("model");
    let t = env.tree(20, true);
    let mut rng = StdRng::seed_from_u64(0xD1CE);
    // model[time] = state after the operation at `time`.
    let mut state: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut snapshots: Vec<(u64, HashMap<u64, Vec<u8>>)> = Vec::new();
    let keyspace = 40u64;
    for step in 1..=1200u64 {
        let k = rng.gen_range(0..keyspace);
        let key = immortaldb_common::codec::key_from_u64(k);
        let tid = Tid(step);
        let at = ts(step, 0);
        match state.get(&k) {
            None => {
                let val = format!("v{step}").into_bytes();
                t.insert(tid, NULL_LSN, &key, &val, env.auth.as_ref())
                    .unwrap();
                state.insert(k, val);
            }
            Some(_) if rng.gen_bool(0.25) => {
                t.delete(tid, NULL_LSN, &key, env.auth.as_ref()).unwrap();
                state.remove(&k);
            }
            Some(_) => {
                let val = format!("v{step}").into_bytes();
                t.update(tid, NULL_LSN, &key, &val, env.auth.as_ref())
                    .unwrap();
                state.insert(k, val);
            }
        }
        env.auth.commit(tid, at);
        if step % 150 == 0 {
            snapshots.push((step, state.clone()));
        }
    }
    let (tsplits, ksplits) = t.split_counts();
    assert!(tsplits > 0, "model run must exercise time splits");
    let _ = ksplits;
    for (step, snap) in &snapshots {
        let as_of = ts(*step, 5);
        // Point queries for every key in the keyspace.
        for k in 0..keyspace {
            let key = immortaldb_common::codec::key_from_u64(k);
            let got = t.get_as_of(&key, as_of, None, env.auth.as_ref()).unwrap();
            assert_eq!(got.as_ref(), snap.get(&k), "key {k} as of step {step}");
        }
        // Full scan must equal the model exactly.
        let items = t.scan_as_of(as_of, None, env.auth.as_ref()).unwrap();
        assert_eq!(items.len(), snap.len(), "scan size as of step {step}");
        for item in items {
            let k = immortaldb_common::codec::u64_from_key(&item.key).unwrap();
            assert_eq!(Some(&item.data), snap.get(&k));
        }
    }
}

#[test]
fn own_writes_survive_concurrent_time_split() {
    // A transaction's own uncommitted write must stay visible to its
    // snapshot reads even after another writer forces a time split that
    // pushes the page's start time past the reader's snapshot.
    let env = Env::new("ownsplit");
    let t = env.tree(20, true);
    let pad = "z".repeat(60);
    // Established data + a snapshot point.
    for k in 0..20u64 {
        put(&t, &env, k + 1, &key_b(k), b"base", ts(k + 1, 0)).unwrap();
    }
    let snapshot = ts(20, 5);
    // Transaction 500 (snapshot = `snapshot`) writes key 3, uncommitted.
    t.update(Tid(500), NULL_LSN, &key_b(3), b"mine", env.auth.as_ref())
        .unwrap();
    // Other transactions hammer the same key range until a time split
    // happens (split time will exceed `snapshot`).
    let mut r = 0u64;
    loop {
        r += 1;
        let tid = 1000 + r;
        for k in 0..20u64 {
            if k == 3 {
                continue; // locked by txn 500 in a real engine
            }
            t.update(
                Tid(tid * 100 + k),
                NULL_LSN,
                &key_b(k),
                format!("v{r}-{pad}").as_bytes(),
                env.auth.as_ref(),
            )
            .unwrap();
            env.auth.commit(Tid(tid * 100 + k), ts(100 + r * 20 + k, 0));
        }
        let (tsplits, _) = t.split_counts();
        if tsplits > 0 || r > 50 {
            break;
        }
    }
    let (tsplits, _) = t.split_counts();
    assert!(tsplits > 0, "workload must force a time split");
    // Read-your-own-writes at the old snapshot.
    let got = t
        .get_as_of(&key_b(3), snapshot, Some(Tid(500)), env.auth.as_ref())
        .unwrap();
    assert_eq!(got, Some(b"mine".to_vec()), "own write visible after split");
    // And through a scan.
    let items = t
        .scan_as_of(snapshot, Some(Tid(500)), env.auth.as_ref())
        .unwrap();
    let mine = items
        .iter()
        .find(|i| i.key == key_b(3))
        .expect("key present");
    assert_eq!(mine.data, b"mine".to_vec());
    // Other keys still resolve to the snapshot-time state.
    let other = items.iter().find(|i| i.key == key_b(4)).expect("key 4");
    assert_eq!(other.data, b"base".to_vec());
}

fn key_b(k: u64) -> [u8; 8] {
    immortaldb_common::codec::key_from_u64(k)
}
