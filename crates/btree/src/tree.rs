//! Tree structure, descent, and logged write operations.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use immortaldb_common::codec::get_u32;
use immortaldb_common::{Error, Lsn, PageId, Result, Tid, Timestamp, TreeId, NULL_LSN};
use immortaldb_storage::buffer::{BufferPool, FrameRef};
use immortaldb_storage::logrec::LogRecord;
use immortaldb_storage::meta::MetaView;
use immortaldb_storage::page::{Page, PageType, FLAG_VERSIONED, REC_HDR};
use immortaldb_storage::recovery::TreeLocator;
use immortaldb_storage::version;
use immortaldb_storage::wal::Wal;
use immortaldb_storage::TimestampResolver;

/// Largest key+data payload a single record may carry. Keeps every record
/// comfortably below a quarter page so key splits always succeed.
pub const MAX_RECORD: usize = 1900;

/// Provides the split time for page time splits: a timestamp strictly
/// greater than every commit timestamp issued so far (the paper splits
/// "using the current time"). Implemented by the timestamp authority.
pub trait SplitTimeSource: Send + Sync {
    fn current_split_ts(&self) -> Timestamp;

    /// Upper bound a time split may use as its boundary. A split above
    /// this value could cut below a commit timestamp that is already
    /// issued but whose (TID-marked) versions must stay in the current
    /// page — those versions would then be invisible to readers between
    /// the commit timestamp and the page's new start. Sources that track
    /// in-flight commits override this; the default imposes no bound.
    fn max_safe_split_ts(&self) -> Timestamp {
        Timestamp::MAX
    }
}

/// A split-time source for unversioned trees and tests.
pub struct FixedSplitTime(pub Timestamp);

impl SplitTimeSource for FixedSplitTime {
    fn current_split_ts(&self) -> Timestamp {
        self.0
    }
}

/// State of the newest (chain-head) version of a key — what snapshot
/// isolation's first-committer-wins check needs to see.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeadVersion {
    /// No chain for this key in the current page.
    NotFound,
    /// Newest version is TID-marked by a transaction the resolver does not
    /// know to be committed (i.e. still active).
    Uncommitted { tid: Tid, stub: bool },
    /// Newest version is committed with this timestamp.
    Committed { ts: Timestamp, stub: bool },
}

/// A disk-backed B+tree. See the crate docs for the concurrency model.
pub struct BTree {
    pub(crate) tree_id: TreeId,
    pub(crate) pool: Arc<BufferPool>,
    pub(crate) wal: Arc<Wal>,
    pub(crate) versioned: bool,
    pub(crate) root: AtomicU32,
    pub(crate) structure: RwLock<()>,
    /// Key-split threshold *T*: after a time split, key-split too if
    /// utilization still exceeds this (default 0.7 → single-slice
    /// utilization ≈ T·ln2 ≈ 0.48).
    pub(crate) split_threshold: f64,
    pub(crate) split_time: Arc<dyn SplitTimeSource>,
    /// Metrics: number of time splits / key splits performed.
    pub(crate) time_splits: AtomicU32,
    pub(crate) key_splits: AtomicU32,
    /// Serializes history-compaction passes over this tree (the
    /// background compactor vs explicit `compact_history` calls).
    pub(crate) compacting: Mutex<()>,
}

impl BTree {
    /// Create a new tree: allocates a root leaf, registers it in the meta
    /// page tree directory, and logs both images atomically.
    pub fn create(
        pool: Arc<BufferPool>,
        wal: Arc<Wal>,
        tree_id: TreeId,
        versioned: bool,
        split_time: Arc<dyn SplitTimeSource>,
    ) -> Result<BTree> {
        let flags = if versioned { FLAG_VERSIONED } else { 0 };
        let root_frame = pool.new_page(PageType::Leaf, flags, 0)?;
        let root_id = root_frame.page_id();

        let meta_frame = pool.fetch(PageId(0))?;
        let mut meta_g = meta_frame.write();
        if MetaView::tree_root(&meta_g, tree_id).is_some() {
            return Err(Error::Catalog(format!("{tree_id:?} already exists")));
        }
        let mut new_meta = meta_g.clone();
        MetaView::set_tree_root(&mut new_meta, tree_id, root_id)?;
        let root_g = root_frame.read();
        let lsn = wal.append(
            Tid::SYSTEM,
            NULL_LSN,
            &LogRecord::PageImages {
                pages: vec![
                    (root_id, root_g.as_bytes().to_vec()),
                    (PageId(0), new_meta.as_bytes().to_vec()),
                ],
            },
        );
        drop(root_g);
        new_meta.set_page_lsn(lsn);
        *meta_g = new_meta;
        meta_frame.mark_dirty(lsn);
        drop(meta_g);
        {
            let mut g = root_frame.write();
            g.set_page_lsn(lsn);
        }
        root_frame.mark_dirty(lsn);

        Ok(BTree {
            tree_id,
            pool,
            wal,
            versioned,
            root: AtomicU32::new(root_id.0),
            structure: RwLock::new(()),
            split_threshold: 0.7,
            split_time,
            time_splits: AtomicU32::new(0),
            key_splits: AtomicU32::new(0),
            compacting: Mutex::new(()),
        })
    }

    /// Open an existing tree from the meta-page directory.
    pub fn open(
        pool: Arc<BufferPool>,
        wal: Arc<Wal>,
        tree_id: TreeId,
        versioned: bool,
        split_time: Arc<dyn SplitTimeSource>,
    ) -> Result<BTree> {
        let meta_frame = pool.fetch(PageId(0))?;
        let root = {
            let g = meta_frame.read();
            MetaView::tree_root(&g, tree_id)
                .ok_or_else(|| Error::Catalog(format!("{tree_id:?} not found")))?
        };
        Ok(BTree {
            tree_id,
            pool,
            wal,
            versioned,
            root: AtomicU32::new(root.0),
            structure: RwLock::new(()),
            split_threshold: 0.7,
            split_time,
            time_splits: AtomicU32::new(0),
            key_splits: AtomicU32::new(0),
            compacting: Mutex::new(()),
        })
    }

    pub fn tree_id(&self) -> TreeId {
        self.tree_id
    }

    pub fn is_versioned(&self) -> bool {
        self.versioned
    }

    pub fn root(&self) -> PageId {
        PageId(self.root.load(Ordering::SeqCst))
    }

    pub(crate) fn set_root(&self, id: PageId) {
        self.root.store(id.0, Ordering::SeqCst);
    }

    /// Set the post-time-split key-split threshold *T* (clamped to
    /// `[0.3, 0.95]`).
    pub fn set_split_threshold(&mut self, t: f64) {
        self.split_threshold = t.clamp(0.3, 0.95);
    }

    /// `(time splits, key splits)` performed since this handle was built.
    pub fn split_counts(&self) -> (u32, u32) {
        (
            self.time_splits.load(Ordering::Relaxed),
            self.key_splits.load(Ordering::Relaxed),
        )
    }

    // -- descent ---------------------------------------------------------

    /// Child pointer stored in an index-page record.
    pub(crate) fn index_child(page: &Page, slot: usize) -> PageId {
        PageId(get_u32(page.rec_data(page.slot(slot)), 0))
    }

    /// Pick the child responsible for `key` in an index page (low-key
    /// entries: rightmost entry with key <= target).
    pub(crate) fn pick_child(page: &Page, key: &[u8]) -> Result<PageId> {
        let n = page.slot_count();
        if n == 0 {
            return Err(Error::Corruption(format!(
                "empty index page {:?}",
                page.page_id()
            )));
        }
        let i = match page.find_slot(key) {
            Ok(i) => i,
            Err(0) => {
                return Err(Error::Corruption(format!(
                    "index page {:?} missing low sentinel",
                    page.page_id()
                )))
            }
            Err(pos) => pos - 1,
        };
        Ok(Self::index_child(page, i))
    }

    /// Descend from the root to the current leaf for `key`. The caller
    /// must hold (at least) the structure read latch so the path cannot
    /// move underneath.
    pub(crate) fn descend(&self, key: &[u8]) -> Result<FrameRef> {
        let metrics = self.pool.metrics();
        let mut page_id = self.root();
        loop {
            let frame = self.pool.fetch(page_id)?;
            // Optimistic step: validate the version counter around a
            // latch-free copy; a racing split retries or falls back.
            let step = frame.read_optimistic(metrics, |g| match g.page_type()? {
                PageType::Leaf => Ok(None),
                PageType::Index => Ok(Some(Self::pick_child(g, key)?)),
                other => Err(Error::Corruption(format!(
                    "descent hit {other:?} page {page_id:?}"
                ))),
            })?;
            match step {
                None => return Ok(frame),
                Some(child) => page_id = child,
            }
        }
    }

    /// Descend recording the whole root→leaf path (for splits).
    pub(crate) fn descend_path(&self, key: &[u8]) -> Result<Vec<PageId>> {
        let metrics = self.pool.metrics();
        let mut path = Vec::with_capacity(4);
        let mut page_id = self.root();
        loop {
            path.push(page_id);
            let frame = self.pool.fetch(page_id)?;
            let step = frame.read_optimistic(metrics, |g| match g.page_type()? {
                PageType::Leaf => Ok(None),
                PageType::Index => Ok(Some(Self::pick_child(g, key)?)),
                other => Err(Error::Corruption(format!(
                    "descent hit {other:?} page {page_id:?}"
                ))),
            })?;
            match step {
                None => return Ok(path),
                Some(child) => page_id = child,
            }
        }
    }

    /// Leftmost current leaf (scan start).
    pub(crate) fn leftmost_leaf(&self) -> Result<FrameRef> {
        let metrics = self.pool.metrics();
        let mut page_id = self.root();
        loop {
            let frame = self.pool.fetch(page_id)?;
            let step = frame.read_optimistic(metrics, |g| match g.page_type()? {
                PageType::Leaf => Ok(None),
                PageType::Index => Ok(Some(Self::index_child(g, 0))),
                other => Err(Error::Corruption(format!(
                    "descent hit {other:?} page {page_id:?}"
                ))),
            })?;
            match step {
                None => return Ok(frame),
                Some(child) => page_id = child,
            }
        }
    }

    fn check_record_size(key: &[u8], data: &[u8]) -> Result<()> {
        let n = key.len() + data.len();
        if n > MAX_RECORD {
            return Err(Error::RecordTooLarge(n));
        }
        Ok(())
    }

    // -- versioned write operations ---------------------------------------

    /// Insert a new record version (§3.2). Fails with
    /// [`Error::DuplicateKey`] if a live (non-deleted) committed or own
    /// version exists. Returns the LSN of the logged operation for the
    /// transaction's backchain.
    pub fn insert(
        &self,
        tid: Tid,
        prev_lsn: Lsn,
        key: &[u8],
        data: &[u8],
        resolver: &dyn TimestampResolver,
    ) -> Result<Lsn> {
        Self::check_record_size(key, data)?;
        self.versioned_write(tid, prev_lsn, key, data, false, true, resolver)
    }

    /// Add a new version for an existing record. Fails with
    /// [`Error::KeyNotFound`] if the key has no live version.
    pub fn update(
        &self,
        tid: Tid,
        prev_lsn: Lsn,
        key: &[u8],
        data: &[u8],
        resolver: &dyn TimestampResolver,
    ) -> Result<Lsn> {
        Self::check_record_size(key, data)?;
        self.versioned_write(tid, prev_lsn, key, data, false, false, resolver)
    }

    /// Record a delete by pushing a delete stub version.
    pub fn delete(
        &self,
        tid: Tid,
        prev_lsn: Lsn,
        key: &[u8],
        resolver: &dyn TimestampResolver,
    ) -> Result<Lsn> {
        self.versioned_write(tid, prev_lsn, key, &[], true, false, resolver)
    }

    /// Shared path for insert/update/delete on versioned trees.
    #[allow(clippy::too_many_arguments)]
    fn versioned_write(
        &self,
        tid: Tid,
        prev_lsn: Lsn,
        key: &[u8],
        data: &[u8],
        stub: bool,
        is_insert: bool,
        resolver: &dyn TimestampResolver,
    ) -> Result<Lsn> {
        debug_assert!(self.versioned);
        loop {
            {
                let _s = self.structure.read();
                let frame = self.descend(key)?;
                let mut g = frame.write();
                // Validate the newest version against the operation type
                // and apply the paper's update trigger: stamp the prior
                // chain before pushing a new version.
                match g.find_slot(key) {
                    Ok(i) => {
                        let head = g.slot(i);
                        let head_live = if g.rec_is_tid_marked(head) {
                            let owner = g.rec_tid(head);
                            if owner != tid && resolver.resolve(owner).is_none() {
                                // Engine-level locks should prevent this.
                                return Err(Error::WriteConflict(tid));
                            }
                            !g.rec_is_stub(head)
                        } else {
                            !g.rec_is_stub(head)
                        };
                        if is_insert && head_live {
                            return Err(Error::DuplicateKey);
                        }
                        if !is_insert && !head_live && !stub {
                            return Err(Error::KeyNotFound);
                        }
                        if !is_insert && stub && !head_live {
                            return Err(Error::KeyNotFound);
                        }
                        // Timestamp the existing chain (update trigger).
                        for (t, n) in version::stamp_chain(&mut g, i, resolver) {
                            self.pool.metrics().ts.stamps_update.add(n as u64);
                            resolver.note_stamped(t, n);
                        }
                    }
                    Err(_) => {
                        if !is_insert {
                            return Err(Error::KeyNotFound);
                        }
                    }
                }
                let rec = LogRecord::AddVersion {
                    tree: self.tree_id,
                    page: frame.page_id(),
                    key: key.to_vec(),
                    data: data.to_vec(),
                    stub,
                };
                match version::add_version(&mut g, key, data, stub, tid) {
                    Ok(_) => {
                        let lsn = self.wal.append(tid, prev_lsn, &rec);
                        g.set_page_lsn(lsn);
                        frame.mark_dirty(lsn);
                        return Ok(lsn);
                    }
                    Err(Error::PageFull) => { /* fall through to split */ }
                    Err(e) => return Err(e),
                }
            }
            // Page full: split under the structure write latch, retry.
            let need = REC_HDR + key.len() + data.len() + immortaldb_common::VERSION_TAIL + 2;
            self.split_for(key, need, resolver)?;
        }
    }

    /// Inspect the newest version of `key` (for first-committer-wins).
    pub fn head_version(
        &self,
        key: &[u8],
        resolver: &dyn TimestampResolver,
    ) -> Result<HeadVersion> {
        let _s = self.structure.read();
        let frame = self.descend(key)?;
        frame.read_optimistic(self.pool.metrics(), |g| {
            let Ok(i) = g.find_slot(key) else {
                return Ok(HeadVersion::NotFound);
            };
            let off = g.slot(i);
            let stub = g.rec_is_stub(off);
            if g.rec_is_tid_marked(off) {
                let owner = g.rec_tid(off);
                match resolver.resolve(owner) {
                    Some(ts) => Ok(HeadVersion::Committed { ts, stub }),
                    None => Ok(HeadVersion::Uncommitted { tid: owner, stub }),
                }
            } else {
                Ok(HeadVersion::Committed {
                    ts: g.rec_timestamp(off),
                    stub,
                })
            }
        })
    }

    // -- unversioned (conventional) operations -----------------------------

    /// Insert into a conventional table (in-place storage, logged with
    /// logical undo).
    pub fn u_insert(&self, tid: Tid, prev_lsn: Lsn, key: &[u8], data: &[u8]) -> Result<Lsn> {
        debug_assert!(!self.versioned);
        Self::check_record_size(key, data)?;
        loop {
            {
                let _s = self.structure.read();
                let frame = self.descend(key)?;
                let mut g = frame.write();
                if g.find_slot(key).is_ok() {
                    return Err(Error::DuplicateKey);
                }
                let need = REC_HDR + key.len() + data.len() + 2;
                if need > g.contiguous_free() && need <= g.total_free() {
                    g.compact()?;
                }
                match g.insert_sorted(key, data, 0) {
                    Ok(_) => {
                        let rec = LogRecord::InsertRecord {
                            tree: self.tree_id,
                            page: frame.page_id(),
                            key: key.to_vec(),
                            data: data.to_vec(),
                        };
                        let lsn = self.wal.append(tid, prev_lsn, &rec);
                        g.set_page_lsn(lsn);
                        frame.mark_dirty(lsn);
                        return Ok(lsn);
                    }
                    Err(Error::PageFull) => {}
                    Err(e) => return Err(e),
                }
            }
            let need = REC_HDR + key.len() + data.len() + 2;
            self.split_for(key, need, &immortaldb_storage::NullResolver)?;
        }
    }

    /// In-place update on a conventional table.
    pub fn u_update(&self, tid: Tid, prev_lsn: Lsn, key: &[u8], data: &[u8]) -> Result<Lsn> {
        debug_assert!(!self.versioned);
        Self::check_record_size(key, data)?;
        loop {
            {
                let _s = self.structure.read();
                let frame = self.descend(key)?;
                let mut g = frame.write();
                let i = g.find_slot(key).map_err(|_| Error::KeyNotFound)?;
                let old = g.rec_data(g.slot(i)).to_vec();
                match g.update_sorted(key, data) {
                    Ok(()) => {
                        let rec = LogRecord::UpdateRecord {
                            tree: self.tree_id,
                            page: frame.page_id(),
                            key: key.to_vec(),
                            old,
                            new: data.to_vec(),
                        };
                        let lsn = self.wal.append(tid, prev_lsn, &rec);
                        g.set_page_lsn(lsn);
                        frame.mark_dirty(lsn);
                        return Ok(lsn);
                    }
                    Err(Error::PageFull) => {}
                    Err(e) => return Err(e),
                }
            }
            let need = REC_HDR + key.len() + data.len() + 2;
            self.split_for(key, need, &immortaldb_storage::NullResolver)?;
        }
    }

    /// Delete from a conventional table.
    pub fn u_delete(&self, tid: Tid, prev_lsn: Lsn, key: &[u8]) -> Result<Lsn> {
        debug_assert!(!self.versioned);
        let _s = self.structure.read();
        let frame = self.descend(key)?;
        let mut g = frame.write();
        let i = g.find_slot(key).map_err(|_| Error::KeyNotFound)?;
        let old = g.rec_data(g.slot(i)).to_vec();
        g.remove_sorted(key)?;
        let rec = LogRecord::DeleteRecord {
            tree: self.tree_id,
            page: frame.page_id(),
            key: key.to_vec(),
            old,
        };
        let lsn = self.wal.append(tid, prev_lsn, &rec);
        g.set_page_lsn(lsn);
        frame.mark_dirty(lsn);
        Ok(lsn)
    }

    /// Point read on a conventional table.
    pub fn u_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        debug_assert!(!self.versioned);
        let _s = self.structure.read();
        let frame = self.descend(key)?;
        Ok(frame.read_optimistic(self.pool.metrics(), |g| {
            g.find_slot(key)
                .ok()
                .map(|i| g.rec_data(g.slot(i)).to_vec())
        }))
    }

    /// Number of live records in a conventional table (scans leaves).
    pub fn u_count(&self) -> Result<usize> {
        debug_assert!(!self.versioned);
        let _s = self.structure.read();
        let mut n = 0usize;
        let mut frame = self.leftmost_leaf()?;
        loop {
            let g = frame.read();
            n += g.slot_count();
            let next = g.next_leaf();
            drop(g);
            if !next.is_valid() {
                return Ok(n);
            }
            frame = self.pool.fetch(next)?;
        }
    }
}

impl BTree {
    /// [`TreeLocator`] support: current leaf page for `key`. There must be
    /// exactly **one** `BTree` handle per tree in a process (the structure
    /// latch lives in the handle); the engine keeps a registry of
    /// `Arc<BTree>` and implements [`TreeLocator`] by delegating here.
    pub fn locate_leaf_page(&self, key: &[u8]) -> Result<PageId> {
        let _s = self.structure.read();
        Ok(self.descend(key)?.page_id())
    }

    /// [`TreeLocator`] support: leaf for `key` with at least `space` free
    /// bytes, splitting as needed.
    pub fn locate_leaf_page_for_insert(
        &self,
        key: &[u8],
        space: usize,
        resolver: &dyn TimestampResolver,
    ) -> Result<PageId> {
        loop {
            {
                let _s = self.structure.read();
                let frame = self.descend(key)?;
                let g = frame.read();
                if space <= g.total_free() {
                    return Ok(frame.page_id());
                }
            }
            self.split_for(key, space, resolver)?;
        }
    }
}

// Quiet the TreeLocator import: it documents the contract implemented by
// the engine over a registry of tree handles.
#[allow(unused_imports)]
use TreeLocator as _TreeLocatorContract;
