//! Integration tests for the wire-protocol server: round trips, typed
//! errors, backpressure shedding, idle-session rollback, pipelining and
//! graceful shutdown.

use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use immortaldb::{Database, DbConfig, Durability, Isolation, Session, Value};
use immortaldb_common::{Error, ErrorCode};
use immortaldb_net::proto::{self, Reply, Request, VERSION};
use immortaldb_net::{Client, Server, ServerConfig};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("immortal-net-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(name: &str, cfg: ServerConfig) -> (Arc<Database>, Server, PathBuf) {
    let dir = scratch(name);
    let db = Arc::new(Database::open(DbConfig::new(&dir).durability(Durability::Fsync)).unwrap());
    let server = Server::start(Arc::clone(&db), cfg).unwrap();
    (db, server, dir)
}

#[test]
fn wire_round_trip_with_as_of() {
    let (db, server, dir) = start("roundtrip", ServerConfig::new("127.0.0.1:0"));
    let addr = server.local_addr();

    let mut c = Client::connect(addr).unwrap();
    c.query("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v VARCHAR(16))")
        .unwrap();
    let r = c.query("INSERT INTO t VALUES (1, 'old')").unwrap();
    assert_eq!(r.affected, 1);

    // Typed transaction surface returns real timestamps.
    let snap = c.begin(Isolation::Serializable).unwrap();
    c.query("UPDATE t SET v = 'new' WHERE id = 1").unwrap();
    assert!(c.in_transaction());
    let commit_ts = c.commit().unwrap();
    assert!(!c.in_transaction());
    assert!(commit_ts >= snap);

    // Current read sees the update...
    let now = c.query("SELECT v FROM t WHERE id = 1").unwrap();
    assert_eq!(now.rows, vec![vec![Value::Varchar("new".into())]]);

    // ...while an AS OF transaction pinned at the update's begin
    // snapshot (before its commit timestamp) sees the old version.
    let eff = c.begin_as_of_ts(snap).unwrap();
    assert!(eff < commit_ts);
    let old = c.query("SELECT v FROM t WHERE id = 1").unwrap();
    c.commit().unwrap();
    assert_eq!(old.rows, vec![vec![Value::Varchar("old".into())]]);

    // SHOW STATS works over the wire and includes the server counters.
    let stats = c.query("SHOW STATS").unwrap();
    let get = |name: &str| {
        stats
            .rows
            .iter()
            .find(|r| r[0] == Value::Varchar(name.into()))
            .map(|r| match r[1] {
                Value::BigInt(v) => v,
                _ => -1,
            })
    };
    assert!(get("server.requests").unwrap() > 0);
    assert_eq!(get("server.active_sessions"), Some(1));
    assert!(get("wal.group_commits").is_some());

    drop(c);
    server.shutdown().unwrap();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parse_errors_carry_code_and_offset() {
    let (db, server, dir) = start("parse-err", ServerConfig::new("127.0.0.1:0"));
    let mut c = Client::connect(server.local_addr()).unwrap();

    match c.query("SELECT * FORM t") {
        Err(Error::Remote {
            code,
            offset,
            message,
        }) => {
            assert_eq!(code, ErrorCode::Parse);
            assert_eq!(offset, Some(9));
            assert!(message.contains("FROM"), "message: {message}");
        }
        other => panic!("expected remote parse error, got {other:?}"),
    }

    // Non-parse errors carry their own codes and no offset.
    match c.query("SELECT * FROM missing") {
        Err(Error::Remote { code, offset, .. }) => {
            assert_eq!(code, ErrorCode::Catalog);
            assert_eq!(offset, None);
        }
        other => panic!("expected catalog error, got {other:?}"),
    }

    drop(c);
    server.shutdown().unwrap();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_is_shed_with_server_busy() {
    // One worker, no queue: the second concurrent connection is shed.
    let (db, server, dir) = start(
        "busy",
        ServerConfig::new("127.0.0.1:0").workers(1).accept_queue(0),
    );
    let addr = server.local_addr();

    // First client occupies the only worker (its handshake completed, so
    // the worker is pinned to this connection).
    let c1 = Client::connect(addr).unwrap();

    match Client::connect(addr) {
        Err(Error::ServerBusy) => {}
        Err(e) => panic!("expected SERVER_BUSY, got error {e}"),
        Ok(_) => panic!("expected SERVER_BUSY, got a connection"),
    }
    assert_eq!(db.metrics().server.connections_rejected.get(), 1);

    // Capacity frees up when the first client leaves.
    drop(c1);
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut c3 = loop {
        match Client::connect(addr) {
            Ok(c) => break c,
            Err(Error::ServerBusy) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20))
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    };
    c3.query("SHOW STATS").unwrap();

    drop(c3);
    server.shutdown().unwrap();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn idle_sessions_are_rolled_back() {
    let (db, server, dir) = start(
        "idle",
        ServerConfig::new("127.0.0.1:0")
            .idle_timeout(Duration::from_millis(200))
            .tick(Duration::from_millis(20)),
    );
    let addr = server.local_addr();

    let mut c = Client::connect(addr).unwrap();
    c.query("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)")
        .unwrap();
    c.begin(Isolation::Serializable).unwrap();
    c.query("INSERT INTO t VALUES (1, 1)").unwrap();

    // Abandon the session: the server must roll the transaction back and
    // hang up once the idle timeout elapses.
    let deadline = Instant::now() + Duration::from_secs(5);
    while db.metrics().server.idle_rollbacks.get() == 0 {
        assert!(Instant::now() < deadline, "idle rollback never happened");
        std::thread::sleep(Duration::from_millis(20));
    }

    // The abandoned insert is gone and its lock is released: a fresh
    // client can claim the same key immediately.
    let mut c2 = Client::connect(addr).unwrap();
    let r = c2.query("SELECT id FROM t").unwrap();
    assert!(r.rows.is_empty(), "uncommitted insert leaked: {:?}", r.rows);
    assert_eq!(c2.query("INSERT INTO t VALUES (1, 2)").unwrap().affected, 1);

    // The idle client's connection was closed server-side.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match c.query("SELECT id FROM t") {
            Err(Error::Io(_)) => break,
            Ok(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            other => panic!("expected closed connection, got {other:?}"),
        }
    }

    drop(c2);
    server.shutdown().unwrap();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pipelined_requests_answer_in_order() {
    let (db, server, dir) = start("pipeline", ServerConfig::new("127.0.0.1:0"));
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.query("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)")
        .unwrap();

    // Fire a burst of autocommit writes without reading any replies.
    const N: usize = 32;
    for i in 0..N {
        c.send_query(&format!("INSERT INTO t VALUES ({i}, {i})"))
            .unwrap();
    }
    assert_eq!(c.pending(), N);
    for _ in 0..N {
        assert_eq!(c.recv_response().unwrap().affected, 1);
    }
    assert_eq!(c.pending(), 0);

    let r = c.query("SELECT id FROM t").unwrap();
    assert_eq!(r.rows.len(), N);

    drop(c);
    server.shutdown().unwrap();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hello_is_required_and_version_checked() {
    let (db, server, dir) = start("hello", ServerConfig::new("127.0.0.1:0"));
    let addr = server.local_addr();

    // Skipping HELLO: first real request is refused and the connection
    // closed.
    let mut raw = TcpStream::connect(addr).unwrap();
    let (op, payload) = Request::Query("SELECT 1".into()).encode();
    proto::write_frame(&mut raw, op, &payload).unwrap();
    let (op, payload) = proto::read_frame(&mut raw).unwrap();
    match Reply::decode(op, &payload).unwrap() {
        Reply::Error { message, .. } => assert!(message.contains("HELLO"), "{message}"),
        other => panic!("expected error, got {other:?}"),
    }

    // Wrong protocol version: typed refusal.
    let mut raw = TcpStream::connect(addr).unwrap();
    let (op, payload) = Request::Hello {
        version: VERSION + 1,
    }
    .encode();
    proto::write_frame(&mut raw, op, &payload).unwrap();
    let (op, payload) = proto::read_frame(&mut raw).unwrap();
    match Reply::decode(op, &payload).unwrap() {
        Reply::Error { message, .. } => {
            assert!(message.contains("version mismatch"), "{message}")
        }
        other => panic!("expected error, got {other:?}"),
    }

    server.shutdown().unwrap();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_reopens_cleanly() {
    let dir = scratch("shutdown");
    let db = Arc::new(Database::open(DbConfig::new(&dir).durability(Durability::Fsync)).unwrap());
    let server = Server::start(Arc::clone(&db), ServerConfig::new("127.0.0.1:0")).unwrap();

    let mut c = Client::connect(server.local_addr()).unwrap();
    c.query("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)")
        .unwrap();
    for i in 0..20 {
        c.query(&format!("INSERT INTO t VALUES ({i}, {i})"))
            .unwrap();
    }
    // Leave a transaction open on a second connection: shutdown must roll
    // it back rather than leak it into the log as a loser.
    let mut open = Client::connect(server.local_addr()).unwrap();
    open.begin(Isolation::Serializable).unwrap();
    open.query("INSERT INTO t VALUES (999, 999)").unwrap();

    drop(c);
    server.shutdown().unwrap();
    drop(open);
    drop(db);

    // Clean reopen: no crash recovery, committed data intact, the
    // abandoned transaction's write gone.
    let db = Database::open(DbConfig::new(&dir).durability(Durability::Fsync)).unwrap();
    assert_eq!(
        db.metrics_snapshot().get("recovery.crash_recoveries"),
        Some(0),
        "graceful shutdown must not require crash recovery"
    );
    let mut s = Session::new(&db);
    let rows = s.execute("SELECT id FROM t").unwrap();
    assert_eq!(rows.rows.len(), 20);
    db.close().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
