//! Integration tests for the wire-protocol server: round trips, typed
//! errors, backpressure shedding, idle-session rollback, pipelining,
//! graceful shutdown, and the adversarial-client battery (slow loris,
//! oversized frames, mid-frame disconnects) against the reactor.

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use immortaldb::{Database, DbConfig, Durability, Isolation, Session, Value};
use immortaldb_common::{Error, ErrorCode};
use immortaldb_net::proto::{self, Reply, Request, VERSION};
use immortaldb_net::{Client, Server, ServerConfig, ServerModel};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("immortal-net-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(name: &str, cfg: ServerConfig) -> (Arc<Database>, Server, PathBuf) {
    let dir = scratch(name);
    let db = Arc::new(Database::open(DbConfig::new(&dir).durability(Durability::Fsync)).unwrap());
    let server = Server::start(Arc::clone(&db), cfg).unwrap();
    (db, server, dir)
}

#[test]
fn wire_round_trip_with_as_of() {
    let (db, server, dir) = start("roundtrip", ServerConfig::new("127.0.0.1:0"));
    let addr = server.local_addr();

    let mut c = Client::connect(addr).unwrap();
    c.query("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v VARCHAR(16))")
        .unwrap();
    let r = c.query("INSERT INTO t VALUES (1, 'old')").unwrap();
    assert_eq!(r.affected, 1);

    // Typed transaction surface returns real timestamps.
    let snap = c.begin(Isolation::Serializable).unwrap();
    c.query("UPDATE t SET v = 'new' WHERE id = 1").unwrap();
    assert!(c.in_transaction());
    let commit_ts = c.commit().unwrap();
    assert!(!c.in_transaction());
    assert!(commit_ts >= snap);

    // Current read sees the update...
    let now = c.query("SELECT v FROM t WHERE id = 1").unwrap();
    assert_eq!(now.rows, vec![vec![Value::Varchar("new".into())]]);

    // ...while an AS OF transaction pinned at the update's begin
    // snapshot (before its commit timestamp) sees the old version.
    let eff = c.begin_as_of_ts(snap).unwrap();
    assert!(eff < commit_ts);
    let old = c.query("SELECT v FROM t WHERE id = 1").unwrap();
    c.commit().unwrap();
    assert_eq!(old.rows, vec![vec![Value::Varchar("old".into())]]);

    // SHOW STATS works over the wire and includes the server counters.
    let stats = c.query("SHOW STATS").unwrap();
    let get = |name: &str| {
        stats
            .rows
            .iter()
            .find(|r| r[0] == Value::Varchar(name.into()))
            .map(|r| match r[1] {
                Value::BigInt(v) => v,
                _ => -1,
            })
    };
    assert!(get("server.requests").unwrap() > 0);
    assert_eq!(get("server.active_sessions"), Some(1));
    assert!(get("wal.group_commits").is_some());

    drop(c);
    server.shutdown().unwrap();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parse_errors_carry_code_and_offset() {
    let (db, server, dir) = start("parse-err", ServerConfig::new("127.0.0.1:0"));
    let mut c = Client::connect(server.local_addr()).unwrap();

    match c.query("SELECT * FORM t") {
        Err(Error::Remote {
            code,
            offset,
            message,
        }) => {
            assert_eq!(code, ErrorCode::Parse);
            assert_eq!(offset, Some(9));
            assert!(message.contains("FROM"), "message: {message}");
        }
        other => panic!("expected remote parse error, got {other:?}"),
    }

    // Non-parse errors carry their own codes and no offset.
    match c.query("SELECT * FROM missing") {
        Err(Error::Remote { code, offset, .. }) => {
            assert_eq!(code, ErrorCode::Catalog);
            assert_eq!(offset, None);
        }
        other => panic!("expected catalog error, got {other:?}"),
    }

    drop(c);
    server.shutdown().unwrap();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_is_shed_with_server_busy() {
    // Thread-per-connection baseline: one worker, no queue — the second
    // concurrent connection is shed.
    let (db, server, dir) = start(
        "busy",
        ServerConfig::new("127.0.0.1:0")
            .model(ServerModel::ThreadPerConn)
            .workers(1)
            .accept_queue(0),
    );
    let addr = server.local_addr();

    // First client occupies the only worker (its handshake completed, so
    // the worker is pinned to this connection).
    let c1 = Client::connect(addr).unwrap();

    match Client::connect(addr) {
        Err(Error::ServerBusy { retry_after_ms }) => {
            assert!(retry_after_ms.is_some(), "shed reply must carry a hint");
        }
        Err(e) => panic!("expected SERVER_BUSY, got error {e}"),
        Ok(_) => panic!("expected SERVER_BUSY, got a connection"),
    }
    assert_eq!(db.metrics().server.connections_rejected.get(), 1);
    assert_eq!(db.metrics().server.shed_connections.get(), 1);

    // Capacity frees up when the first client leaves.
    drop(c1);
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut c3 = loop {
        match Client::connect(addr) {
            Ok(c) => break c,
            Err(Error::ServerBusy { .. }) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20))
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    };
    c3.query("SHOW STATS").unwrap();

    drop(c3);
    server.shutdown().unwrap();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reactor_sheds_connections_over_cap_with_retry_hint() {
    let (db, server, dir) = start(
        "busy-reactor",
        ServerConfig::new("127.0.0.1:0")
            .max_connections(1)
            .shed_retry_ms(7),
    );
    let addr = server.local_addr();

    let mut c1 = Client::connect(addr).unwrap();
    c1.query("SHOW STATS").unwrap(); // ensure the reactor registered c1

    match Client::connect(addr) {
        Err(Error::ServerBusy { retry_after_ms }) => {
            assert_eq!(retry_after_ms, Some(7), "hint must be the configured one");
        }
        Err(e) => panic!("expected SERVER_BUSY, got error {e}"),
        Ok(_) => panic!("expected SERVER_BUSY, got a connection"),
    }
    assert_eq!(db.metrics().server.shed_connections.get(), 1);

    // Capacity frees up when the first client goes away.
    drop(c1);
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut c3 = loop {
        match Client::connect(addr) {
            Ok(c) => break c,
            Err(Error::ServerBusy { .. }) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20))
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    };
    c3.query("SHOW STATS").unwrap();

    drop(c3);
    server.shutdown().unwrap();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn idle_sessions_are_rolled_back() {
    let (db, server, dir) = start(
        "idle",
        ServerConfig::new("127.0.0.1:0")
            .idle_timeout(Duration::from_millis(200))
            .tick(Duration::from_millis(20)),
    );
    let addr = server.local_addr();

    let mut c = Client::connect(addr).unwrap();
    c.query("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)")
        .unwrap();
    c.begin(Isolation::Serializable).unwrap();
    c.query("INSERT INTO t VALUES (1, 1)").unwrap();

    // Abandon the session: the server must roll the transaction back and
    // hang up once the idle timeout elapses.
    let deadline = Instant::now() + Duration::from_secs(5);
    while db.metrics().server.idle_rollbacks.get() == 0 {
        assert!(Instant::now() < deadline, "idle rollback never happened");
        std::thread::sleep(Duration::from_millis(20));
    }

    // The abandoned insert is gone and its lock is released: a fresh
    // client can claim the same key immediately.
    let mut c2 = Client::connect(addr).unwrap();
    let r = c2.query("SELECT id FROM t").unwrap();
    assert!(r.rows.is_empty(), "uncommitted insert leaked: {:?}", r.rows);
    assert_eq!(c2.query("INSERT INTO t VALUES (1, 2)").unwrap().affected, 1);

    // The idle client's connection was closed server-side.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match c.query("SELECT id FROM t") {
            Err(Error::Io(_)) => break,
            Ok(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            other => panic!("expected closed connection, got {other:?}"),
        }
    }

    drop(c2);
    server.shutdown().unwrap();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pipelined_requests_answer_in_order() {
    let (db, server, dir) = start("pipeline", ServerConfig::new("127.0.0.1:0"));
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.query("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)")
        .unwrap();

    // Fire a burst of autocommit writes without reading any replies.
    const N: usize = 32;
    for i in 0..N {
        c.send_query(&format!("INSERT INTO t VALUES ({i}, {i})"))
            .unwrap();
    }
    assert_eq!(c.pending(), N);
    for _ in 0..N {
        assert_eq!(c.recv_response().unwrap().affected, 1);
    }
    assert_eq!(c.pending(), 0);

    let r = c.query("SELECT id FROM t").unwrap();
    assert_eq!(r.rows.len(), N);

    drop(c);
    server.shutdown().unwrap();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hello_is_required_and_version_checked() {
    let (db, server, dir) = start("hello", ServerConfig::new("127.0.0.1:0"));
    let addr = server.local_addr();

    // Skipping HELLO: first real request is refused and the connection
    // closed.
    let mut raw = TcpStream::connect(addr).unwrap();
    let (op, payload) = Request::Query("SELECT 1".into()).encode();
    proto::write_frame(&mut raw, op, &payload).unwrap();
    let (op, payload) = proto::read_frame(&mut raw).unwrap();
    match Reply::decode(op, &payload).unwrap() {
        Reply::Error { message, .. } => assert!(message.contains("HELLO"), "{message}"),
        other => panic!("expected error, got {other:?}"),
    }

    // Wrong protocol version: typed refusal.
    let mut raw = TcpStream::connect(addr).unwrap();
    let (op, payload) = Request::Hello {
        version: VERSION + 1,
    }
    .encode();
    proto::write_frame(&mut raw, op, &payload).unwrap();
    let (op, payload) = proto::read_frame(&mut raw).unwrap();
    match Reply::decode(op, &payload).unwrap() {
        Reply::Error { message, .. } => {
            assert!(message.contains("version mismatch"), "{message}")
        }
        other => panic!("expected error, got {other:?}"),
    }

    server.shutdown().unwrap();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_reopens_cleanly() {
    let dir = scratch("shutdown");
    let db = Arc::new(Database::open(DbConfig::new(&dir).durability(Durability::Fsync)).unwrap());
    let server = Server::start(Arc::clone(&db), ServerConfig::new("127.0.0.1:0")).unwrap();

    let mut c = Client::connect(server.local_addr()).unwrap();
    c.query("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)")
        .unwrap();
    for i in 0..20 {
        c.query(&format!("INSERT INTO t VALUES ({i}, {i})"))
            .unwrap();
    }
    // Leave a transaction open on a second connection: shutdown must roll
    // it back rather than leak it into the log as a loser.
    let mut open = Client::connect(server.local_addr()).unwrap();
    open.begin(Isolation::Serializable).unwrap();
    open.query("INSERT INTO t VALUES (999, 999)").unwrap();

    drop(c);
    server.shutdown().unwrap();
    drop(open);
    drop(db);

    // Clean reopen: no crash recovery, committed data intact, the
    // abandoned transaction's write gone.
    let db = Database::open(DbConfig::new(&dir).durability(Durability::Fsync)).unwrap();
    assert_eq!(
        db.metrics_snapshot().get("recovery.crash_recoveries"),
        Some(0),
        "graceful shutdown must not require crash recovery"
    );
    let mut s = Session::new(&db);
    let rows = s.execute("SELECT id FROM t").unwrap();
    assert_eq!(rows.rows.len(), 20);
    db.close().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Adversarial clients: the reactor must share no fate with them.
// ---------------------------------------------------------------------

#[test]
fn slow_loris_partial_frames_do_not_starve_other_clients() {
    // One execution core. Eight connections each park a few header
    // bytes and go silent: under the reactor they are never dispatched,
    // so they cannot pin the core the way they would pin a worker
    // thread in the old model.
    let (db, server, dir) = start("loris", ServerConfig::new("127.0.0.1:0").workers(1));
    let addr = server.local_addr();

    let mut loris = Vec::new();
    for i in 0..8 {
        let mut s = TcpStream::connect(addr).unwrap();
        // A plausible frame header promising more bytes than we send.
        let len: u32 = 64;
        let mut partial = len.to_le_bytes().to_vec();
        partial.push(0x01); // HELLO opcode
        partial.truncate(3 + (i % 3)); // some don't even finish the header
        s.write_all(&partial).unwrap();
        loris.push(s); // keep the socket open, never complete the frame
    }

    // A well-behaved client gets served promptly regardless.
    let mut c = Client::connect(addr).unwrap();
    c.query("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)")
        .unwrap();
    for i in 0..10 {
        assert_eq!(
            c.query(&format!("INSERT INTO t VALUES ({i}, {i})"))
                .unwrap()
                .affected,
            1
        );
    }
    assert_eq!(c.query("SELECT id FROM t").unwrap().rows.len(), 10);

    drop(c);
    drop(loris);
    server.shutdown().unwrap();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_frame_is_rejected_and_others_keep_serving() {
    let (db, server, dir) = start("oversize", ServerConfig::new("127.0.0.1:0"));
    let addr = server.local_addr();

    let mut victim = Client::connect(addr).unwrap();
    victim
        .query("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)")
        .unwrap();

    // A frame length beyond MAX_FRAME: the server hangs up without
    // allocating or replying (the stream state is untrustworthy).
    let mut hostile = TcpStream::connect(addr).unwrap();
    let huge: u32 = 64 * 1024 * 1024;
    hostile.write_all(&huge.to_le_bytes()).unwrap();
    hostile.write_all(&[0x02u8; 32]).unwrap();
    match proto::read_frame(&mut hostile) {
        Err(_) => {}
        Ok(f) => panic!("expected hangup for oversized frame, got {f:?}"),
    }

    // Collateral damage check: the existing session still works.
    assert_eq!(
        victim
            .query("INSERT INTO t VALUES (1, 1)")
            .unwrap()
            .affected,
        1
    );

    drop(victim);
    server.shutdown().unwrap();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_frame_disconnect_releases_the_session() {
    let (db, server, dir) = start(
        "midframe",
        ServerConfig::new("127.0.0.1:0").tick(Duration::from_millis(10)),
    );
    let addr = server.local_addr();

    let mut c = Client::connect(addr).unwrap();
    c.query("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)")
        .unwrap();

    // A raw client opens a transaction, takes a lock, then dies halfway
    // through its next frame.
    let mut dying = TcpStream::connect(addr).unwrap();
    for req in [
        Request::Hello { version: VERSION },
        Request::Begin(Isolation::Serializable),
        Request::Query("INSERT INTO t VALUES (7, 7)".into()),
    ] {
        let (op, payload) = req.encode();
        proto::write_frame(&mut dying, op, &payload).unwrap();
        proto::read_frame(&mut dying).unwrap();
    }
    // Half a frame (header promises 16 bytes, only 3 arrive), then FIN:
    // the server must drop the partial bytes and roll the txn back.
    dying.write_all(&[16, 0, 0, 0, 0x02, b'S', b'E']).unwrap();
    drop(dying);

    // The abandoned insert's lock must clear without waiting for any
    // idle timeout: the disconnect itself is the trigger.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match c.query("INSERT INTO t VALUES (7, 70)") {
            Ok(r) => {
                assert_eq!(r.affected, 1);
                break;
            }
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => panic!("lock never released after disconnect: {e}"),
        }
    }

    drop(c);
    server.shutdown().unwrap();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn idle_abandoned_txn_never_holds_locks_past_the_deadline() {
    // Regression for the timer-wheel idle reaper: the rollback must fire
    // from reactor ticks, not from a read that never returns — within a
    // bounded multiple of the configured deadline.
    let idle = Duration::from_millis(150);
    let (db, server, dir) = start(
        "idle-locks",
        ServerConfig::new("127.0.0.1:0")
            .idle_timeout(idle)
            .tick(Duration::from_millis(15)),
    );
    let addr = server.local_addr();

    let mut c = Client::connect(addr).unwrap();
    c.query("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)")
        .unwrap();

    let mut abandoned = Client::connect(addr).unwrap();
    abandoned.begin(Isolation::Serializable).unwrap();
    abandoned.query("INSERT INTO t VALUES (1, 1)").unwrap();
    let abandoned_at = Instant::now();
    // No further bytes are ever sent on `abandoned`; the socket stays
    // open, so only the timer wheel can reap it.

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match c.query("INSERT INTO t VALUES (1, 2)") {
            Ok(r) => {
                assert_eq!(r.affected, 1);
                break;
            }
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => panic!("idle transaction still holds its lock: {e}"),
        }
    }
    let waited = abandoned_at.elapsed();
    assert!(
        waited < idle * 20,
        "lock held for {waited:?}, far past the {idle:?} deadline"
    );
    assert_eq!(db.metrics().server.idle_rollbacks.get(), 1);

    drop(abandoned);
    drop(c);
    server.shutdown().unwrap();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn many_idle_connections_on_a_tiny_core_pool() {
    // The reactor's reason to exist: 64 open, mostly-idle connections on
    // two execution cores, with every one still answering when poked.
    let (db, server, dir) = start(
        "many-idle",
        ServerConfig::new("127.0.0.1:0")
            .workers(2)
            .max_connections(256),
    );
    let addr = server.local_addr();

    let mut c0 = Client::connect(addr).unwrap();
    c0.query("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)")
        .unwrap();

    let mut idle: Vec<Client> = (0..64).map(|_| Client::connect(addr).unwrap()).collect();
    assert_eq!(db.metrics().server.open_connections.get(), 65);

    // Mixed load from a few of them while the rest stay parked.
    for (i, c) in idle.iter_mut().enumerate().take(8) {
        assert_eq!(
            c.query(&format!("INSERT INTO t VALUES ({i}, {i})"))
                .unwrap()
                .affected,
            1
        );
    }
    // Every parked connection is still alive and serviceable.
    for c in idle.iter_mut() {
        assert!(!c
            .query("SELECT id FROM t WHERE id = 0")
            .unwrap()
            .rows
            .is_empty());
    }

    drop(idle);
    drop(c0);
    server.shutdown().unwrap();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}
