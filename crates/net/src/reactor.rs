//! Readiness-based connection reactor: one event-loop thread multiplexes
//! every connection over [`sys::Poller`] (epoll on Linux), and a fixed
//! worker-core pool executes only connections that have a complete
//! request buffered. Idle connections cost a registration and a few
//! hundred bytes — no thread, no stack — so thousands of mostly-idle
//! sessions fit on a fixed thread budget.
//!
//! Life of a request:
//!
//! 1. The reactor reads readable sockets into each connection's
//!    [`FrameBuffer`] (bounded burst per event, so one firehose client
//!    cannot starve the loop).
//! 2. When a connection holds a complete frame it is *dispatched*: its
//!    poll interest drops to silent, the token goes on the bounded work
//!    queue, and a worker drains every buffered frame through the
//!    session — which is what lets group commit batch across
//!    connections, exactly as in the thread-per-connection model.
//! 3. The worker flushes what it can, then posts a completion; the
//!    reactor re-arms the socket (read-, write-, or both-interest
//!    depending on the unflushed tail).
//!
//! Admission control is two-level and typed: beyond `max_connections`
//! new sockets get one SERVER_BUSY frame carrying a `retry_after_ms`
//! hint and are closed; beyond `max_inflight` dispatched connections,
//! buffered requests are answered SERVER_BUSY *per frame* without being
//! decoded (`server.shed_requests`). Backpressure is per-session: a
//! connection whose reply backlog passes [`OUT_CAP`] stops being read
//! until the peer drains it.
//!
//! Idle sessions are reaped from a coarse timer wheel advanced on the
//! reactor tick — an abandoned transaction is rolled back (releasing
//! its locks) within one tick of the deadline, never waiting on a
//! blocked read. `SUBSCRIBE_WAL` hands the socket off to a dedicated
//! blocking shipper thread, since replication is a long-lived push
//! stream that would otherwise squat a worker core.

#![cfg(unix)]

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use immortaldb::{Database, Session};
use immortaldb_common::{Error, Result};

use crate::proto::{FrameBuffer, Reply, Request, VERSION};
use crate::server::{handle_request, ship_wal, ServerConfig};
use crate::sys::{self, Interest};

const TOK_WAKER: u64 = 0;
const TOK_LISTENER: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Reply bytes a connection may buffer before the reactor stops reading
/// from it (per-session backpressure ahead of the group-commit barrier).
const OUT_CAP: usize = 4 * 1024 * 1024;

/// Max bytes read from one socket per readiness event (fairness bound).
const READ_BURST: usize = 256 * 1024;

/// Per-connection state. The mutex is held by the reactor for socket
/// I/O and by exactly one worker while the connection is dispatched;
/// the two never contend because a dispatched connection's poll
/// interest is silent until the worker's completion is processed.
struct Conn {
    stream: TcpStream,
    frames: FrameBuffer,
    /// Unflushed reply bytes (encoded frames).
    out: Vec<u8>,
    /// Open transaction parked between dispatches.
    txn: Option<immortaldb::Transaction>,
    greeted: bool,
    last_activity: Instant,
    /// Owned by a worker right now (poll interest is silent).
    dispatched: bool,
    /// Close as soon as `out` flushes; no further reads or dispatches.
    closing: bool,
    /// Peer sent FIN: serve what is buffered, then close.
    eof: bool,
    /// Set by a worker on SUBSCRIBE_WAL: hand off to a shipper thread.
    subscribe: Option<u64>,
    interest: Interest,
}

impl Conn {
    fn desired_interest(&self) -> Interest {
        if self.dispatched {
            Interest::None
        } else if self.closing || (self.eof && !self.out.is_empty()) {
            Interest::Write
        } else if self.out.is_empty() {
            Interest::Read
        } else if self.out.len() >= OUT_CAP {
            Interest::Write
        } else {
            Interest::Both
        }
    }
}

/// What [`Reactor::settle`] decided about a connection.
#[derive(PartialEq)]
enum Settled {
    Keep,
    Close,
}

/// Append one encoded reply frame to a connection's output buffer.
fn append_reply(out: &mut Vec<u8>, reply: &Reply) {
    let (op, payload) = reply.encode();
    let len = (payload.len() + 1) as u32;
    out.extend_from_slice(&len.to_le_bytes());
    out.push(op);
    out.extend_from_slice(&payload);
}

/// Write as much of `out` as the socket accepts right now.
/// `Ok(true)` = fully flushed, `Ok(false)` = kernel buffer full.
fn flush_out(c: &mut Conn) -> std::io::Result<bool> {
    while !c.out.is_empty() {
        match (&c.stream).write(&c.out) {
            Ok(0) => return Err(std::io::Error::from(ErrorKind::WriteZero)),
            Ok(n) => {
                c.out.drain(..n);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// State shared between the reactor thread, the worker cores and the
/// public [`ReactorServer`] handle.
struct RShared {
    db: Arc<Database>,
    cfg: ServerConfig,
    shutdown: AtomicBool,
    conns: Mutex<HashMap<u64, Arc<Mutex<Conn>>>>,
    /// Tokens with buffered requests, awaiting a worker core.
    work: Mutex<VecDeque<u64>>,
    work_cv: Condvar,
    /// Dispatched-but-unfinished connections (admission-control gauge).
    inflight: AtomicUsize,
    /// Tokens whose worker finished; drained by the reactor on wake.
    completions: Mutex<Vec<u64>>,
    waker: sys::Waker,
    /// WAL shipper threads spawned from SUBSCRIBE_WAL hand-offs.
    shippers: Mutex<Vec<JoinHandle<()>>>,
}

impl RShared {
    fn max_inflight(&self) -> usize {
        if self.cfg.max_inflight == 0 {
            self.cfg.workers * 16
        } else {
            self.cfg.max_inflight
        }
    }
}

/// The reactor-model server: one event-loop thread plus `cfg.workers`
/// worker cores. Constructed through `Server::start` when
/// `ServerConfig::model` is `ServerModel::Reactor` (the default).
pub(crate) struct ReactorServer {
    shared: Arc<RShared>,
    local_addr: SocketAddr,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ReactorServer {
    pub(crate) fn start(db: Arc<Database>, cfg: ServerConfig) -> Result<ReactorServer> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let poller = sys::Poller::new().map_err(Error::Io)?;
        let waker = sys::Waker::new().map_err(Error::Io)?;
        poller
            .add(waker.fd(), TOK_WAKER, Interest::Read)
            .map_err(Error::Io)?;
        poller
            .add(listener.as_raw_fd(), TOK_LISTENER, Interest::Read)
            .map_err(Error::Io)?;

        let shared = Arc::new(RShared {
            db,
            cfg,
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            work: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            inflight: AtomicUsize::new(0),
            completions: Mutex::new(Vec::new()),
            waker,
            shippers: Mutex::new(Vec::new()),
        });

        let mut workers = Vec::with_capacity(shared.cfg.workers);
        for i in 0..shared.cfg.workers {
            let sh = Arc::clone(&shared);
            workers.push(
                thread::Builder::new()
                    .name(format!("imdb-core-{i}"))
                    .spawn(move || worker_loop(&sh))
                    .map_err(Error::Io)?,
            );
        }
        let sh = Arc::clone(&shared);
        let reactor = thread::Builder::new()
            .name("imdb-reactor".into())
            .spawn(move || Reactor::new(sh, poller, listener).run())
            .map_err(Error::Io)?;

        Ok(ReactorServer {
            shared,
            local_addr,
            reactor: Some(reactor),
            workers,
        })
    }

    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Graceful shutdown: stop the event loop, let worker cores drain
    /// every already-dispatched connection (in-flight commits finish and
    /// their replies flush), roll back abandoned transactions, then
    /// close the database — the final WAL force.
    pub(crate) fn shutdown(mut self) -> Result<()> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.waker.wake();
        if let Some(r) = self.reactor.take() {
            let _ = r.join();
        }
        // Workers drain the remaining queue before exiting.
        self.shared.work_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        for s in self.shared.shippers.lock().unwrap().drain(..) {
            let _ = s.join();
        }
        // Abandon whatever connections remain: locks and uncommitted
        // versions must not outlive the server.
        let conns: Vec<_> = self.shared.conns.lock().unwrap().drain().collect();
        for (_, conn) in conns {
            let mut c = conn.lock().unwrap();
            let _ = flush_out(&mut c);
            if let Some(mut txn) = c.txn.take() {
                let _ = self.shared.db.rollback(&mut txn);
            }
            self.shared.db.metrics().server.connections_closed.inc();
        }
        self.shared.db.metrics().server.open_connections.set(0);
        self.shared.db.close()
    }
}

fn worker_loop(sh: &Arc<RShared>) {
    loop {
        let token = {
            let mut q = sh.work.lock().unwrap();
            loop {
                if let Some(t) = q.pop_front() {
                    break t;
                }
                if sh.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                q = sh.work_cv.wait(q).unwrap();
            }
        };
        let conn = sh.conns.lock().unwrap().get(&token).cloned();
        if let Some(conn) = conn {
            let mut c = conn.lock().unwrap();
            serve_buffered(sh, &mut c);
            let _ = flush_out(&mut c);
            c.dispatched = false;
        }
        let now = sh.inflight.fetch_sub(1, Ordering::SeqCst) - 1;
        sh.db.metrics().server.active_sessions.set(now as u64);
        sh.completions.lock().unwrap().push(token);
        sh.waker.wake();
    }
}

/// Drain every complete frame buffered on a dispatched connection
/// through its session, appending replies to `out`. Mirrors the
/// thread-per-connection serve loop's semantics exactly (HELLO gating,
/// version check, hostile-framing hangup, SUBSCRIBE_WAL interception).
fn serve_buffered(sh: &RShared, c: &mut Conn) {
    let m = &sh.db.metrics().server;
    let mut session = Session::attach(sh.db.as_ref(), c.txn.take());
    loop {
        if c.closing || c.subscribe.is_some() {
            break;
        }
        let (opcode, payload) = match c.frames.next_frame() {
            Ok(Some(f)) => f,
            Ok(None) => break,
            Err(_) => {
                // Hostile framing: hang up without a reply — the stream
                // state is untrustworthy.
                c.closing = true;
                break;
            }
        };
        m.requests.inc();
        let timer = m.request_ns.start_timer();
        let reply = match Request::decode(opcode, &payload) {
            Ok(Request::Hello { version }) if !c.greeted => {
                if version == VERSION {
                    c.greeted = true;
                    Reply::Ok {
                        txn_open: false,
                        ts: None,
                        affected: 0,
                        message: format!("immortaldb protocol {VERSION}"),
                    }
                } else {
                    let e = Error::Sql(format!(
                        "protocol version mismatch: client {version}, server {VERSION}"
                    ));
                    m.errors.inc();
                    append_reply(&mut c.out, &Reply::from_error(&e, false));
                    c.closing = true;
                    break;
                }
            }
            Ok(Request::SubscribeWal { from_lsn }) => {
                if !c.greeted {
                    m.errors.inc();
                    append_reply(
                        &mut c.out,
                        &Reply::from_error(&Error::Sql("expected HELLO first".into()), false),
                    );
                    c.closing = true;
                    break;
                }
                // The connection leaves the reactor: the completion
                // handler hands the socket to a blocking shipper thread.
                c.subscribe = Some(from_lsn);
                break;
            }
            Ok(req) => {
                if !c.greeted {
                    m.errors.inc();
                    append_reply(
                        &mut c.out,
                        &Reply::from_error(&Error::Sql("expected HELLO first".into()), false),
                    );
                    c.closing = true;
                    break;
                }
                handle_request(sh.db.as_ref(), &mut session, req)
            }
            Err(e) => {
                // Undecodable payload: answer, then hang up.
                m.errors.inc();
                append_reply(&mut c.out, &Reply::from_error(&e, session.in_transaction()));
                c.closing = true;
                break;
            }
        };
        timer.stop();
        if matches!(reply, Reply::Error { .. }) {
            m.errors.inc();
        }
        append_reply(&mut c.out, &reply);
    }
    c.txn = session.into_txn();
}

/// Coarse hashed timer wheel advanced once per reactor tick. Deadlines
/// are lazy: expiry re-checks `last_activity` and reschedules the
/// remainder, so activity never has to remove a timer.
struct TimerWheel {
    slots: Vec<Vec<u64>>,
    cursor: usize,
}

impl TimerWheel {
    fn new(idle_timeout: Duration, tick: Duration) -> TimerWheel {
        let n = (idle_timeout.as_millis() / tick.as_millis().max(1)) as usize + 2;
        TimerWheel {
            slots: vec![Vec::new(); n],
            cursor: 0,
        }
    }

    fn schedule(&mut self, token: u64, delay_ticks: usize) {
        let n = self.slots.len();
        let d = delay_ticks.clamp(1, n - 1);
        let slot = (self.cursor + d) % n;
        self.slots[slot].push(token);
    }

    fn advance(&mut self) -> Vec<u64> {
        self.cursor = (self.cursor + 1) % self.slots.len();
        std::mem::take(&mut self.slots[self.cursor])
    }
}

struct Reactor {
    sh: Arc<RShared>,
    poller: sys::Poller,
    listener: TcpListener,
    next_token: u64,
    wheel: TimerWheel,
    idle_ticks: usize,
}

impl Reactor {
    fn new(sh: Arc<RShared>, poller: sys::Poller, listener: TcpListener) -> Reactor {
        let tick = sh.cfg.tick;
        let idle = sh.cfg.idle_timeout;
        let idle_ticks = (idle.as_millis() / tick.as_millis().max(1)) as usize + 1;
        Reactor {
            wheel: TimerWheel::new(idle, tick),
            sh,
            poller,
            listener,
            next_token: FIRST_CONN_TOKEN,
            idle_ticks,
        }
    }

    fn run(mut self) {
        let tick = self.sh.cfg.tick;
        let mut events: Vec<sys::Event> = Vec::new();
        let mut next_tick = Instant::now() + tick;
        loop {
            if self.sh.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let timeout = next_tick.saturating_duration_since(Instant::now());
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                return;
            }
            if self.sh.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let batch = std::mem::take(&mut events);
            for ev in &batch {
                match ev.token {
                    TOK_WAKER => self.sh.waker.drain(),
                    TOK_LISTENER => self.accept_ready(),
                    token => self.conn_event(token, ev),
                }
            }
            events = batch;
            self.apply_completions();
            let now = Instant::now();
            while now >= next_tick {
                self.advance_timers();
                next_tick += tick;
            }
        }
    }

    fn conn(&self, token: u64) -> Option<Arc<Mutex<Conn>>> {
        self.sh.conns.lock().unwrap().get(&token).cloned()
    }

    fn accept_ready(&mut self) {
        loop {
            let stream = match self.listener.accept() {
                Ok((s, _)) => s,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            };
            let m = &self.sh.db.metrics().server;
            m.connections_accepted.inc();
            let open = self.sh.conns.lock().unwrap().len();
            if open >= self.sh.cfg.max_connections {
                m.shed_connections.inc();
                crate::server::shed(stream, Some(self.sh.cfg.shed_retry_ms));
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let fd = stream.as_raw_fd();
            let token = self.next_token;
            self.next_token += 1;
            let conn = Arc::new(Mutex::new(Conn {
                stream,
                frames: FrameBuffer::new(),
                out: Vec::new(),
                txn: None,
                greeted: false,
                last_activity: Instant::now(),
                dispatched: false,
                closing: false,
                eof: false,
                subscribe: None,
                interest: Interest::Read,
            }));
            let mut conns = self.sh.conns.lock().unwrap();
            conns.insert(token, conn);
            if self.poller.add(fd, token, Interest::Read).is_err() {
                conns.remove(&token);
                continue;
            }
            m.open_connections.set(conns.len() as u64);
            drop(conns);
            self.wheel.schedule(token, self.idle_ticks);
        }
    }

    fn conn_event(&mut self, token: u64, ev: &sys::Event) {
        let Some(conn) = self.conn(token) else { return };
        let mut c = conn.lock().unwrap();
        if c.dispatched {
            return; // stale event raced a dispatch; the completion re-arms
        }
        if ev.writable || (c.closing && ev.closed) {
            match flush_out(&mut c) {
                Ok(true) => {
                    if c.closing || (c.eof && c.frames.buffered() == 0) {
                        drop(c);
                        self.close_conn(token);
                        return;
                    }
                }
                Ok(false) => {}
                Err(_) => {
                    drop(c);
                    self.close_conn(token);
                    return;
                }
            }
        }
        if ev.readable && !c.closing {
            let mut chunk = [0u8; 16 * 1024];
            let mut total = 0;
            loop {
                match (&c.stream).read(&mut chunk) {
                    Ok(0) => {
                        c.eof = true;
                        break;
                    }
                    Ok(n) => {
                        c.frames.extend(&chunk[..n]);
                        total += n;
                        if total >= READ_BURST {
                            break; // fairness: level-triggered epoll re-fires
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        c.eof = true;
                        break;
                    }
                }
            }
            if total > 0 {
                c.last_activity = Instant::now();
            }
        } else if ev.closed && !ev.readable {
            c.eof = true;
        }
        let settled = self.settle(token, &mut c);
        drop(c);
        if settled == Settled::Close {
            self.close_conn(token);
        }
    }

    /// Decide a non-dispatched connection's fate: dispatch it, shed its
    /// requests, update its poll interest, or ask the caller to close it
    /// (the caller drops the conn lock first — `close_conn` re-locks).
    fn settle(&mut self, token: u64, c: &mut Conn) -> Settled {
        debug_assert!(!c.dispatched);
        let has_frame = match c.frames.has_complete_frame() {
            Ok(b) => b,
            // Hostile framing noticed before any work was scheduled.
            Err(_) => return Settled::Close,
        };
        if has_frame && !c.closing {
            if self.sh.inflight.load(Ordering::SeqCst) >= self.sh.max_inflight() {
                self.shed_requests(c);
            } else {
                c.dispatched = true;
                c.last_activity = Instant::now();
                let now = self.sh.inflight.fetch_add(1, Ordering::SeqCst) + 1;
                self.sh.db.metrics().server.active_sessions.set(now as u64);
                self.update_interest(token, c);
                let mut q = self.sh.work.lock().unwrap();
                q.push_back(token);
                drop(q);
                self.sh.work_cv.notify_one();
                return Settled::Keep;
            }
        }
        if flush_out(c).is_err() {
            return Settled::Close;
        }
        let has_frame = c.frames.has_complete_frame().unwrap_or(false);
        if (c.closing || (c.eof && !has_frame)) && c.out.is_empty() {
            return Settled::Close;
        }
        self.update_interest(token, c);
        Settled::Keep
    }

    /// Over the in-flight cap: answer every buffered frame SERVER_BUSY
    /// (with the retry hint) without decoding or scheduling anything.
    fn shed_requests(&self, c: &mut Conn) {
        let m = &self.sh.db.metrics().server;
        let busy = Reply::Error {
            txn_open: c.txn.is_some(),
            code: immortaldb_common::ErrorCode::Busy,
            offset: None,
            message: Error::ServerBusy {
                retry_after_ms: Some(self.sh.cfg.shed_retry_ms),
            }
            .to_string(),
            retry_after_ms: Some(self.sh.cfg.shed_retry_ms),
        };
        loop {
            match c.frames.next_frame() {
                Ok(Some(_)) => {
                    m.shed_requests.inc();
                    append_reply(&mut c.out, &busy);
                }
                Ok(None) => break,
                Err(_) => {
                    c.closing = true;
                    break;
                }
            }
        }
    }

    fn update_interest(&self, token: u64, c: &mut Conn) {
        let want = c.desired_interest();
        if want != c.interest {
            c.interest = want;
            let _ = self.poller.modify(c.stream.as_raw_fd(), token, want);
        }
    }

    fn apply_completions(&mut self) {
        let done: Vec<u64> = std::mem::take(&mut *self.sh.completions.lock().unwrap());
        for token in done {
            let Some(conn) = self.conn(token) else {
                continue;
            };
            let mut c = conn.lock().unwrap();
            if c.dispatched {
                continue; // already re-dispatched (shouldn't happen)
            }
            if let Some(from_lsn) = c.subscribe.take() {
                drop(c);
                self.hand_off_subscription(token, from_lsn);
                continue;
            }
            let settled = self.settle(token, &mut c);
            drop(c);
            if settled == Settled::Close {
                self.close_conn(token);
            }
        }
    }

    /// Move a SUBSCRIBE_WAL connection out of the reactor onto a
    /// dedicated blocking shipper thread (replication is a long-lived
    /// push stream; parking it on a worker core would squat the pool).
    fn hand_off_subscription(&mut self, token: u64, from_lsn: u64) {
        let Some(conn) = self.sh.conns.lock().unwrap().remove(&token) else {
            return;
        };
        let m = &self.sh.db.metrics().server;
        m.open_connections
            .set(self.sh.conns.lock().unwrap().len() as u64);
        let c = conn.lock().unwrap();
        let _ = self.poller.delete(c.stream.as_raw_fd());
        let stream = match c.stream.try_clone() {
            Ok(s) => s,
            Err(_) => {
                m.connections_closed.inc();
                return;
            }
        };
        drop(c);
        drop(conn); // closes the reactor's fd; the shipper owns the dup
        if stream.set_nonblocking(false).is_err()
            || stream.set_read_timeout(Some(self.sh.cfg.tick)).is_err()
        {
            m.connections_closed.inc();
            return;
        }
        let sh = Arc::clone(&self.sh);
        let handle = thread::Builder::new()
            .name(format!("imdb-shipper-{token}"))
            .spawn(move || {
                ship_wal(sh.db.as_ref(), &sh.shutdown, &stream, from_lsn);
                sh.db.metrics().server.connections_closed.inc();
            });
        match handle {
            Ok(h) => self.sh.shippers.lock().unwrap().push(h),
            Err(_) => m.connections_closed.inc(),
        }
    }

    fn close_conn(&mut self, token: u64) {
        let Some(conn) = self.sh.conns.lock().unwrap().remove(&token) else {
            return;
        };
        let mut c = conn.lock().unwrap();
        let _ = self.poller.delete(c.stream.as_raw_fd());
        if let Some(mut txn) = c.txn.take() {
            let _ = self.sh.db.rollback(&mut txn);
        }
        let m = &self.sh.db.metrics().server;
        m.connections_closed.inc();
        m.open_connections
            .set(self.sh.conns.lock().unwrap().len() as u64);
    }

    /// One tick: expire due timers. Deadlines are lazy — a timer firing
    /// for a recently-active connection just reschedules the remainder.
    fn advance_timers(&mut self) {
        let due = self.wheel.advance();
        if due.is_empty() {
            return;
        }
        let idle_timeout = self.sh.cfg.idle_timeout;
        let tick_ms = self.sh.cfg.tick.as_millis().max(1);
        for token in due {
            let Some(conn) = self.conn(token) else {
                continue;
            };
            // A dispatched connection's lock is held by its worker; it
            // is by definition not idle. Skip without blocking.
            let Ok(c) = conn.try_lock() else {
                self.wheel.schedule(token, self.idle_ticks);
                continue;
            };
            if c.dispatched {
                self.wheel.schedule(token, self.idle_ticks);
                continue;
            }
            let idle = c.last_activity.elapsed();
            if idle >= idle_timeout {
                if c.txn.is_some() {
                    self.sh.db.metrics().server.idle_rollbacks.inc();
                }
                drop(c);
                drop(conn);
                self.close_conn(token);
            } else {
                let remaining = idle_timeout - idle;
                let ticks = (remaining.as_millis() / tick_ms) as usize + 1;
                self.wheel.schedule(token, ticks);
            }
        }
    }
}
