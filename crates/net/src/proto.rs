//! The wire protocol: framing, opcodes and payload codecs.
//!
//! Every frame is `u32 len (LE) | u8 opcode | payload`, where `len`
//! counts the opcode byte plus the payload. Integers are little-endian;
//! strings and byte blobs are `u32 len + bytes` (the engine's standard
//! [`Writer`]/[`Reader`] codec). The layout is versioned by the HELLO
//! handshake: a client opens with `HELLO{magic "IMDB", version}` and the
//! server refuses mismatches, so both sides always agree on the frame
//! grammar below.
//!
//! Requests:
//!
//! | op | name        | payload |
//! |----|-------------|---------|
//! | 01 | HELLO       | `"IMDB"` + `u16 version` |
//! | 02 | QUERY       | SQL text (raw UTF-8, rest of frame) |
//! | 03 | BEGIN       | `u8` isolation (0 = serializable, 1 = snapshot) |
//! | 04 | BEGIN_AS_OF | `u8` kind (0 = clock ms, 1 = exact) + `u64` ms/ttime + `u32` sn |
//! | 05 | COMMIT      | empty |
//! | 06 | ROLLBACK    | empty |
//!
//! Replication (a SUBSCRIBE_WAL upgrades the connection into a one-way
//! log stream; only REPL_ACK frames flow back):
//!
//! | op | name          | payload |
//! |----|---------------|---------|
//! | 10 | SUBSCRIBE_WAL | `u64 from_lsn` (end of the follower's local log prefix) |
//! | 11 | REPL_ACK      | `u64 applied_lsn` |
//! | 90 | WAL_BATCH     | `u64 start_lsn` + `u64 horizon_ttime` + `u32 horizon_sn` + `bytes` raw frame-aligned log bytes |
//!
//! Responses (every response starts with `u8 txn_open` so the client can
//! mirror the session's transaction state without guessing):
//!
//! | op | name  | payload |
//! |----|-------|---------|
//! | 80 | OK    | `u8 txn_open` + `u8 has_ts` \[+ `u64 ttime` + `u32 sn`\] + `u64 affected` + `str message` |
//! | 81 | ROWS  | `u8 txn_open` + `u16 ncols` + cols + `u32 nrows` + rows + `str message` |
//! | 82 | ERROR | `u8 txn_open` + `u8 code` + `u8 has_offset` \[+ `u32 offset`\] + `str message` \[+ `u8 has_retry` + `u32 retry_after_ms`\] |
//!
//! The trailing retry-hint on ERROR is a protocol-compatible extension:
//! strings are length-prefixed, so a version-1 decoder stops after
//! `message` and ignores the extra bytes, while the extended decoder
//! treats a missing tail as "no hint".
//!
//! Row values are tagged: `1` SMALLINT (`i16`), `2` INT (`i32`),
//! `3` BIGINT (`i64`), `4` VARCHAR (`u32 len + bytes`).

use std::io::{self, Read, Write};

use immortaldb::{Isolation, Value};
use immortaldb_common::codec::{Reader, Writer};
use immortaldb_common::{Error, ErrorCode, Result, Timestamp};

/// Handshake magic: first bytes of every HELLO payload.
pub const MAGIC: &[u8; 4] = b"IMDB";
/// Protocol version spoken by this build.
pub const VERSION: u16 = 1;
/// Upper bound on a frame's `len` field; anything larger is a corrupt or
/// hostile stream and the connection is dropped.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Request and response opcodes.
pub mod op {
    pub const HELLO: u8 = 0x01;
    pub const QUERY: u8 = 0x02;
    pub const BEGIN: u8 = 0x03;
    pub const BEGIN_AS_OF: u8 = 0x04;
    pub const COMMIT: u8 = 0x05;
    pub const ROLLBACK: u8 = 0x06;

    pub const SUBSCRIBE_WAL: u8 = 0x10;
    pub const REPL_ACK: u8 = 0x11;

    pub const OK: u8 = 0x80;
    pub const ROWS: u8 = 0x81;
    pub const ERROR: u8 = 0x82;

    pub const WAL_BATCH: u8 = 0x90;
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Write one frame (single `write_all`, so frames are never interleaved
/// even if the caller races — each connection has one writer anyway).
pub fn write_frame(w: &mut impl Write, opcode: u8, payload: &[u8]) -> io::Result<()> {
    let len = 1 + payload.len();
    let mut buf = Vec::with_capacity(4 + len);
    buf.extend_from_slice(&(len as u32).to_le_bytes());
    buf.push(opcode);
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()
}

/// Read one frame, blocking until it is complete (client side).
pub fn read_frame(r: &mut impl Read) -> io::Result<(u8, Vec<u8>)> {
    let mut hdr = [0u8; 4];
    r.read_exact(&mut hdr)?;
    let len = u32::from_le_bytes(hdr);
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame length {len}"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let opcode = body[0];
    body.remove(0);
    Ok((opcode, body))
}

/// Incremental frame parser for the server's polled reads: bytes arrive
/// in arbitrary chunks (with read timeouts between them) and complete
/// frames are peeled off the front. This is what makes pipelining work —
/// a burst of requests parses into frames one `next_frame` call at a
/// time with no further socket reads.
#[derive(Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Feed raw bytes received from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame, if one is buffered.
    pub fn next_frame(&mut self) -> io::Result<Option<(u8, Vec<u8>)>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
        if len == 0 || len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad frame length {len}"),
            ));
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let opcode = self.buf[4];
        let payload = self.buf[5..total].to_vec();
        self.buf.drain(..total);
        Ok(Some((opcode, payload)))
    }

    /// Whether at least one complete frame is buffered, without consuming
    /// it. Surfaces the same hostile-length error as [`next_frame`]
    /// (`next_frame`: [`FrameBuffer::next_frame`]), so a reactor can
    /// reject a bad connection before scheduling any work for it.
    pub fn has_complete_frame(&self) -> io::Result<bool> {
        if self.buf.len() < 4 {
            return Ok(false);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
        if len == 0 || len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad frame length {len}"),
            ));
        }
        Ok(self.buf.len() >= 4 + len as usize)
    }

    /// Bytes buffered but not yet consumed (partial-frame residue).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// The AS OF target of a `BEGIN_AS_OF` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsOfTarget {
    /// Wall-clock milliseconds; the server quantizes to the 20 ms tick
    /// (everything committed within or before the tick is visible).
    ClockMs(u64),
    /// An exact `(ttime, sn)` timestamp, e.g. one returned by COMMIT.
    Exact(Timestamp),
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    Hello {
        version: u16,
    },
    Query(String),
    Begin(Isolation),
    BeginAsOf(AsOfTarget),
    Commit,
    Rollback,
    /// Upgrade this connection into a WAL-shipping stream starting at
    /// `from_lsn` (the end of the follower's locally valid log prefix).
    SubscribeWal {
        from_lsn: u64,
    },
    /// Follower progress report: everything below `applied_lsn` has been
    /// appended locally and replayed.
    ReplAck {
        applied_lsn: u64,
    },
}

impl Request {
    /// Encode to `(opcode, payload)`.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            Request::Hello { version } => {
                let mut w = Writer::new();
                w.raw(MAGIC).u16(*version);
                (op::HELLO, w.finish())
            }
            Request::Query(sql) => (op::QUERY, sql.as_bytes().to_vec()),
            Request::Begin(iso) => {
                let b = match iso {
                    Isolation::Serializable => 0u8,
                    Isolation::Snapshot => 1u8,
                };
                (op::BEGIN, vec![b])
            }
            Request::BeginAsOf(target) => {
                let mut w = Writer::new();
                match target {
                    AsOfTarget::ClockMs(ms) => {
                        w.u8(0).u64(*ms).u32(0);
                    }
                    AsOfTarget::Exact(ts) => {
                        w.u8(1).u64(ts.ttime).u32(ts.sn);
                    }
                }
                (op::BEGIN_AS_OF, w.finish())
            }
            Request::Commit => (op::COMMIT, Vec::new()),
            Request::Rollback => (op::ROLLBACK, Vec::new()),
            Request::SubscribeWal { from_lsn } => {
                let mut w = Writer::new();
                w.u64(*from_lsn);
                (op::SUBSCRIBE_WAL, w.finish())
            }
            Request::ReplAck { applied_lsn } => {
                let mut w = Writer::new();
                w.u64(*applied_lsn);
                (op::REPL_ACK, w.finish())
            }
        }
    }

    /// Decode from `(opcode, payload)`. Malformed payloads surface as
    /// [`Error::Corruption`] (the server answers with an ERROR frame and
    /// drops the connection).
    pub fn decode(opcode: u8, payload: &[u8]) -> Result<Request> {
        match opcode {
            op::HELLO => {
                let mut r = Reader::new(payload);
                let magic = r.raw(4)?;
                if magic != MAGIC {
                    return Err(Error::Corruption("bad HELLO magic".into()));
                }
                let version = r.u16()?;
                Ok(Request::Hello { version })
            }
            op::QUERY => {
                let sql = std::str::from_utf8(payload)
                    .map_err(|_| Error::Corruption("QUERY payload is not UTF-8".into()))?;
                Ok(Request::Query(sql.to_string()))
            }
            op::BEGIN => {
                let mut r = Reader::new(payload);
                let iso = match r.u8()? {
                    0 => Isolation::Serializable,
                    1 => Isolation::Snapshot,
                    other => return Err(Error::Corruption(format!("bad isolation byte {other}"))),
                };
                Ok(Request::Begin(iso))
            }
            op::BEGIN_AS_OF => {
                let mut r = Reader::new(payload);
                let kind = r.u8()?;
                let t = r.u64()?;
                let sn = r.u32()?;
                match kind {
                    0 => Ok(Request::BeginAsOf(AsOfTarget::ClockMs(t))),
                    1 => Ok(Request::BeginAsOf(AsOfTarget::Exact(Timestamp::new(t, sn)))),
                    other => Err(Error::Corruption(format!("bad AS OF kind {other}"))),
                }
            }
            op::COMMIT => Ok(Request::Commit),
            op::ROLLBACK => Ok(Request::Rollback),
            op::SUBSCRIBE_WAL => {
                let mut r = Reader::new(payload);
                Ok(Request::SubscribeWal { from_lsn: r.u64()? })
            }
            op::REPL_ACK => {
                let mut r = Reader::new(payload);
                Ok(Request::ReplAck {
                    applied_lsn: r.u64()?,
                })
            }
            other => Err(Error::Corruption(format!(
                "unknown request opcode {other:#x}"
            ))),
        }
    }
}

// ---------------------------------------------------------------------
// Replication push frames
// ---------------------------------------------------------------------

/// One shipped chunk of raw WAL bytes (server → follower push frame).
///
/// `horizon` is the primary's visible commit horizon sampled *before* the
/// byte range was: every transaction with commit timestamp ≤ `horizon`
/// has all its log records at LSNs below `next_lsn()`, so a follower that
/// has applied this batch may safely serve `AS OF ts` reads for any
/// `ts ≤ horizon`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalBatch {
    /// File offset (LSN) of the first shipped byte; must equal the end of
    /// the follower's local log.
    pub start_lsn: u64,
    /// Safe read horizon covered by this batch.
    pub horizon: Timestamp,
    /// Raw frame-aligned log bytes (may be empty: a pure horizon bump).
    pub bytes: Vec<u8>,
}

impl WalBatch {
    /// LSN one past the shipped bytes.
    pub fn next_lsn(&self) -> u64 {
        self.start_lsn + self.bytes.len() as u64
    }

    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut w = Writer::new();
        w.u64(self.start_lsn)
            .u64(self.horizon.ttime)
            .u32(self.horizon.sn)
            .bytes(&self.bytes);
        (op::WAL_BATCH, w.finish())
    }

    pub fn decode(opcode: u8, payload: &[u8]) -> Result<WalBatch> {
        if opcode != op::WAL_BATCH {
            return Err(Error::Corruption(format!(
                "expected WAL_BATCH, got opcode {opcode:#x}"
            )));
        }
        let mut r = Reader::new(payload);
        let start_lsn = r.u64()?;
        let horizon = Timestamp::new(r.u64()?, r.u32()?);
        let bytes = r.bytes()?.to_vec();
        Ok(WalBatch {
            start_lsn,
            horizon,
            bytes,
        })
    }
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    Ok {
        txn_open: bool,
        /// Commit timestamp (COMMIT) or begin snapshot (BEGIN variants).
        ts: Option<Timestamp>,
        affected: u64,
        message: String,
    },
    Rows {
        txn_open: bool,
        columns: Vec<String>,
        rows: Vec<Vec<Value>>,
        message: String,
    },
    Error {
        txn_open: bool,
        code: ErrorCode,
        /// Byte offset into the statement for parse errors.
        offset: Option<u32>,
        message: String,
        /// Back-off hint for `Busy`-coded sheds: how long the client
        /// should wait before retrying. Encoded as a trailing extension
        /// so old peers interoperate.
        retry_after_ms: Option<u32>,
    },
}

fn put_str(w: &mut Writer, s: &str) {
    w.bytes(s.as_bytes());
}

fn get_str(r: &mut Reader<'_>) -> Result<String> {
    let b = r.bytes()?;
    String::from_utf8(b.to_vec()).map_err(|_| Error::Corruption("non-UTF8 string".into()))
}

fn put_value(w: &mut Writer, v: &Value) {
    match v {
        Value::SmallInt(n) => {
            w.u8(1).u16(*n as u16);
        }
        Value::Int(n) => {
            w.u8(2).u32(*n as u32);
        }
        Value::BigInt(n) => {
            w.u8(3).u64(*n as u64);
        }
        Value::Varchar(s) => {
            w.u8(4).bytes(s.as_bytes());
        }
    }
}

fn get_value(r: &mut Reader<'_>) -> Result<Value> {
    Ok(match r.u8()? {
        1 => Value::SmallInt(r.u16()? as i16),
        2 => Value::Int(r.u32()? as i32),
        3 => Value::BigInt(r.u64()? as i64),
        4 => Value::Varchar(get_str(r)?),
        other => return Err(Error::Corruption(format!("unknown value tag {other}"))),
    })
}

impl Reply {
    /// Encode to `(opcode, payload)`.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            Reply::Ok {
                txn_open,
                ts,
                affected,
                message,
            } => {
                let mut w = Writer::new();
                w.u8(*txn_open as u8);
                match ts {
                    Some(ts) => {
                        w.u8(1).u64(ts.ttime).u32(ts.sn);
                    }
                    None => {
                        w.u8(0);
                    }
                }
                w.u64(*affected);
                put_str(&mut w, message);
                (op::OK, w.finish())
            }
            Reply::Rows {
                txn_open,
                columns,
                rows,
                message,
            } => {
                let mut w = Writer::new();
                w.u8(*txn_open as u8).u16(columns.len() as u16);
                for c in columns {
                    put_str(&mut w, c);
                }
                w.u32(rows.len() as u32);
                for row in rows {
                    for v in row {
                        put_value(&mut w, v);
                    }
                }
                put_str(&mut w, message);
                (op::ROWS, w.finish())
            }
            Reply::Error {
                txn_open,
                code,
                offset,
                message,
                retry_after_ms,
            } => {
                let mut w = Writer::new();
                w.u8(*txn_open as u8).u8(*code as u8);
                match offset {
                    Some(o) => {
                        w.u8(1).u32(*o);
                    }
                    None => {
                        w.u8(0);
                    }
                }
                put_str(&mut w, message);
                match retry_after_ms {
                    Some(ms) => {
                        w.u8(1).u32(*ms);
                    }
                    None => {
                        w.u8(0);
                    }
                }
                (op::ERROR, w.finish())
            }
        }
    }

    /// Decode from `(opcode, payload)`.
    pub fn decode(opcode: u8, payload: &[u8]) -> Result<Reply> {
        let mut r = Reader::new(payload);
        match opcode {
            op::OK => {
                let txn_open = r.u8()? != 0;
                let ts = if r.u8()? != 0 {
                    Some(Timestamp::new(r.u64()?, r.u32()?))
                } else {
                    None
                };
                let affected = r.u64()?;
                let message = get_str(&mut r)?;
                Ok(Reply::Ok {
                    txn_open,
                    ts,
                    affected,
                    message,
                })
            }
            op::ROWS => {
                let txn_open = r.u8()? != 0;
                let ncols = r.u16()? as usize;
                let mut columns = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    columns.push(get_str(&mut r)?);
                }
                let nrows = r.u32()? as usize;
                let mut rows = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    let mut row = Vec::with_capacity(ncols);
                    for _ in 0..ncols {
                        row.push(get_value(&mut r)?);
                    }
                    rows.push(row);
                }
                let message = get_str(&mut r)?;
                Ok(Reply::Rows {
                    txn_open,
                    columns,
                    rows,
                    message,
                })
            }
            op::ERROR => {
                let txn_open = r.u8()? != 0;
                let code = ErrorCode::from_u8(r.u8()?);
                let offset = if r.u8()? != 0 { Some(r.u32()?) } else { None };
                let message = get_str(&mut r)?;
                // Trailing retry-hint extension: absent entirely in
                // frames from older peers.
                let retry_after_ms = if r.remaining() > 0 && r.u8()? != 0 {
                    Some(r.u32()?)
                } else {
                    None
                };
                Ok(Reply::Error {
                    txn_open,
                    code,
                    offset,
                    message,
                    retry_after_ms,
                })
            }
            other => Err(Error::Corruption(format!(
                "unknown response opcode {other:#x}"
            ))),
        }
    }

    /// Build the ERROR reply for an engine error.
    pub fn from_error(e: &Error, txn_open: bool) -> Reply {
        Reply::Error {
            txn_open,
            code: e.code(),
            offset: e.parse_offset(),
            message: e.to_string(),
            retry_after_ms: match e {
                Error::ServerBusy { retry_after_ms } => *retry_after_ms,
                _ => None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        for req in [
            Request::Hello { version: VERSION },
            Request::Query("SELECT * FROM t WHERE a = 'x y'".into()),
            Request::Begin(Isolation::Serializable),
            Request::Begin(Isolation::Snapshot),
            Request::BeginAsOf(AsOfTarget::ClockMs(123_456)),
            Request::BeginAsOf(AsOfTarget::Exact(Timestamp::new(1000, 7))),
            Request::Commit,
            Request::Rollback,
            Request::SubscribeWal { from_lsn: 8 },
            Request::ReplAck {
                applied_lsn: 1 << 40,
            },
        ] {
            let (op, payload) = req.encode();
            assert_eq!(Request::decode(op, &payload).unwrap(), req);
        }
    }

    #[test]
    fn wal_batch_roundtrip() {
        for batch in [
            WalBatch {
                start_lsn: 8,
                horizon: Timestamp::new(1234, 5),
                bytes: vec![1, 2, 3, 4, 5],
            },
            // Pure horizon bump: no bytes.
            WalBatch {
                start_lsn: 99,
                horizon: Timestamp::new(40, 0),
                bytes: Vec::new(),
            },
        ] {
            let (op, payload) = batch.encode();
            assert_eq!(op, super::op::WAL_BATCH);
            let got = WalBatch::decode(op, &payload).unwrap();
            assert_eq!(got, batch);
            assert_eq!(got.next_lsn(), batch.start_lsn + batch.bytes.len() as u64);
        }
        assert!(WalBatch::decode(super::op::OK, &[]).is_err());
    }

    #[test]
    fn reply_roundtrip() {
        for reply in [
            Reply::Ok {
                txn_open: true,
                ts: Some(Timestamp::new(2000, 3)),
                affected: 42,
                message: "committed".into(),
            },
            Reply::Ok {
                txn_open: false,
                ts: None,
                affected: 0,
                message: String::new(),
            },
            Reply::Rows {
                txn_open: false,
                columns: vec!["id".into(), "v".into()],
                rows: vec![
                    vec![Value::Int(1), Value::Varchar("a".into())],
                    vec![Value::Int(-7), Value::Varchar(String::new())],
                ],
                message: "2 rows".into(),
            },
            Reply::Error {
                txn_open: true,
                code: ErrorCode::Parse,
                offset: Some(9),
                message: "expected FROM".into(),
                retry_after_ms: None,
            },
            Reply::Error {
                txn_open: false,
                code: ErrorCode::Busy,
                offset: None,
                message: "server busy".into(),
                retry_after_ms: Some(40),
            },
        ] {
            let (op, payload) = reply.encode();
            assert_eq!(Reply::decode(op, &payload).unwrap(), reply);
        }
    }

    #[test]
    fn error_retry_hint_is_a_compatible_extension() {
        // A version-1 ERROR payload ends at the message; the extended
        // decoder must read it as "no hint".
        let mut w = Writer::new();
        w.u8(0).u8(ErrorCode::Busy as u8).u8(0);
        put_str(&mut w, "server busy");
        let legacy = w.finish();
        match Reply::decode(op::ERROR, &legacy).unwrap() {
            Reply::Error { retry_after_ms, .. } => assert_eq!(retry_after_ms, None),
            other => panic!("unexpected decode: {other:?}"),
        }
        // And an old decoder (which stops after the message) stays
        // correct on extended frames because the tail is appended.
        let (op, extended) = Reply::Error {
            txn_open: false,
            code: ErrorCode::Busy,
            offset: None,
            message: "server busy".into(),
            retry_after_ms: Some(25),
        }
        .encode();
        assert_eq!(op, op::ERROR);
        assert!(extended.len() == legacy.len() + 5);
        assert_eq!(&extended[..legacy.len()], &legacy[..]);
    }

    #[test]
    fn value_tags_cover_negative_integers() {
        let mut w = Writer::new();
        put_value(&mut w, &Value::SmallInt(-5));
        put_value(&mut w, &Value::Int(-100_000));
        put_value(&mut w, &Value::BigInt(i64::MIN));
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(get_value(&mut r).unwrap(), Value::SmallInt(-5));
        assert_eq!(get_value(&mut r).unwrap(), Value::Int(-100_000));
        assert_eq!(get_value(&mut r).unwrap(), Value::BigInt(i64::MIN));
    }

    #[test]
    fn frame_buffer_reassembles_split_and_pipelined_frames() {
        let (op1, p1) = Request::Query("SELECT 1".into()).encode();
        let (op2, p2) = Request::Commit.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, op1, &p1).unwrap();
        write_frame(&mut wire, op2, &p2).unwrap();

        // Feed a byte at a time: frames pop exactly when complete.
        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        for b in &wire {
            fb.extend(std::slice::from_ref(b));
            while let Some(f) = fb.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, op1);
        assert_eq!(got[1].0, op2);
        assert_eq!(
            Request::decode(got[0].0, &got[0].1).unwrap(),
            Request::Query("SELECT 1".into())
        );

        // Feeding everything at once pipelines both frames.
        let mut fb = FrameBuffer::new();
        fb.extend(&wire);
        assert!(fb.next_frame().unwrap().is_some());
        assert!(fb.next_frame().unwrap().is_some());
        assert!(fb.next_frame().unwrap().is_none());
    }

    #[test]
    fn frame_buffer_rejects_hostile_lengths() {
        let mut fb = FrameBuffer::new();
        fb.extend(&(MAX_FRAME + 1).to_le_bytes());
        assert!(fb.next_frame().is_err());
        let mut fb = FrameBuffer::new();
        fb.extend(&0u32.to_le_bytes());
        assert!(fb.next_frame().is_err());
    }
}
