//! Wire-protocol front door for Immortal DB.
//!
//! The paper's engine lived inside SQL Server, which clients reached over
//! a wire protocol; this crate gives the reproduction the same shape. It
//! provides:
//!
//! * [`proto`] — a small length-prefixed binary protocol: every frame is
//!   `u32 len | u8 opcode | payload`, with request opcodes for HELLO,
//!   QUERY, BEGIN, BEGIN AS OF, COMMIT and ROLLBACK and response opcodes
//!   OK, ROWS and ERROR. ERROR frames carry the engine's stable
//!   [`ErrorCode`](immortaldb_common::ErrorCode) plus the byte offset of
//!   parse errors, never matched-on strings.
//! * [`server`] — a TCP server owning one [`Database`](immortaldb::Database).
//!   Each connection gets a session wrapping the SQL
//!   [`Session`](immortaldb::Session) (one open transaction, explicit or
//!   autocommit; AS OF sessions route through `Database::begin_as_of_ts`).
//!   Two serving models share one wire behavior: the default
//!   [`ServerModel::Reactor`] multiplexes all connections over a
//!   readiness event loop ([`sys`] + [`reactor`]) with a fixed pool of
//!   execution cores — idle connections cost no thread — while
//!   [`ServerModel::ThreadPerConn`] keeps the classic
//!   one-worker-per-connection baseline. Overload is shed with a typed
//!   SERVER_BUSY error carrying a `retry_after_ms` back-off hint
//!   (connection-level and, under the reactor, per-request). Idle
//!   sessions are rolled back from timer-wheel ticks; shutdown drains
//!   in-flight commits before the final WAL force. Requests are read
//!   through a streaming frame buffer, so pipelined clients are served
//!   back-to-back and group commit batches across connections.
//! * [`client`] — [`Client`]: connect/handshake, `query()` with typed row
//!   decoding, native BEGIN/COMMIT/ROLLBACK returning real
//!   [`Timestamp`](immortaldb_common::Timestamp)s, and a split
//!   `send_query()`/`recv_response()` pair for pipelining.
//! * Replication frames — SUBSCRIBE_WAL flips a connection into a
//!   server-push stream of WAL_BATCH frames (raw log bytes plus the
//!   primary's visibility horizon); `crates/repl` builds read replicas
//!   on top ([`Client::subscribe_wal`] / [`WalSubscription`]).
//!
//! Server-side traffic is observable via the engine registry's `server.*`
//! metrics (`SHOW STATS` works over the wire, too).

pub mod client;
pub mod proto;
#[cfg(unix)]
pub mod reactor;
pub mod server;
#[cfg(unix)]
pub mod sys;

pub use client::{Client, Response, WalSubscription};
pub use server::{Server, ServerConfig, ServerModel};
