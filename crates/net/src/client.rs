//! Blocking client for the Immortal DB wire protocol.
//!
//! [`Client::connect`] performs the HELLO handshake; after that,
//! [`Client::query`] runs one statement per round trip, and the typed
//! [`Client::begin`] / [`Client::commit`] / [`Client::rollback`] /
//! [`Client::begin_as_of_ms`] calls return real timestamps instead of
//! parsing messages. For pipelining, [`Client::send_query`] writes a
//! request without waiting and [`Client::recv_response`] collects the
//! replies in order — the server executes pipelined requests
//! back-to-back, letting group commit batch across connections.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use immortaldb::{Isolation, Value};
use immortaldb_common::{Error, ErrorCode, Result, Timestamp};

use crate::proto::{self, AsOfTarget, Reply, Request, WalBatch, VERSION};

/// A decoded non-error server response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
    pub affected: u64,
    pub message: String,
    /// Commit timestamp (COMMIT) or begin snapshot (BEGIN variants).
    pub ts: Option<Timestamp>,
}

/// One connection to an `immortaldb-server`.
pub struct Client {
    stream: TcpStream,
    txn_open: bool,
    /// Requests sent but not yet answered (pipelining depth).
    in_flight: usize,
}

impl Client {
    /// Connect and handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = Client {
            stream,
            txn_open: false,
            in_flight: 0,
        };
        client.send(&Request::Hello { version: VERSION })?;
        client.recv_response()?;
        Ok(client)
    }

    /// Whether the server reports an open transaction on this session.
    pub fn in_transaction(&self) -> bool {
        self.txn_open
    }

    /// Execute one SQL statement and wait for its result.
    pub fn query(&mut self, sql: &str) -> Result<Response> {
        self.send_query(sql)?;
        self.recv_response()
    }

    /// Begin an explicit transaction; returns its begin snapshot.
    pub fn begin(&mut self, isolation: Isolation) -> Result<Timestamp> {
        self.round_trip_ts(&Request::Begin(isolation))
    }

    /// Begin a read-only AS OF transaction from epoch milliseconds;
    /// returns the effective (horizon-clamped) timestamp.
    pub fn begin_as_of_ms(&mut self, ms: u64) -> Result<Timestamp> {
        self.round_trip_ts(&Request::BeginAsOf(AsOfTarget::ClockMs(ms)))
    }

    /// Begin a read-only AS OF transaction at an exact timestamp, e.g.
    /// one returned by [`Client::commit`].
    pub fn begin_as_of_ts(&mut self, ts: Timestamp) -> Result<Timestamp> {
        self.round_trip_ts(&Request::BeginAsOf(AsOfTarget::Exact(ts)))
    }

    /// Commit the open transaction; returns its commit timestamp.
    pub fn commit(&mut self) -> Result<Timestamp> {
        self.round_trip_ts(&Request::Commit)
    }

    /// Roll back the open transaction.
    pub fn rollback(&mut self) -> Result<()> {
        self.send(&Request::Rollback)?;
        self.recv_response().map(|_| ())
    }

    /// Send a QUERY without waiting for the reply (pipelining). Pair
    /// each call with one [`Client::recv_response`]; replies arrive in
    /// request order.
    pub fn send_query(&mut self, sql: &str) -> Result<()> {
        self.send(&Request::Query(sql.to_string()))
    }

    /// Receive the next pending response. Error frames are surfaced as
    /// [`Error::ServerBusy`] or [`Error::Remote`] (with the typed code
    /// and, for parse errors, the byte offset).
    pub fn recv_response(&mut self) -> Result<Response> {
        let (op, payload) = proto::read_frame(&mut self.stream)?;
        self.in_flight = self.in_flight.saturating_sub(1);
        match Reply::decode(op, &payload)? {
            Reply::Ok {
                txn_open,
                ts,
                affected,
                message,
            } => {
                self.txn_open = txn_open;
                Ok(Response {
                    columns: Vec::new(),
                    rows: Vec::new(),
                    affected,
                    message,
                    ts,
                })
            }
            Reply::Rows {
                txn_open,
                columns,
                rows,
                message,
            } => {
                self.txn_open = txn_open;
                Ok(Response {
                    columns,
                    rows,
                    affected: 0,
                    message,
                    ts: None,
                })
            }
            Reply::Error {
                txn_open,
                code,
                offset,
                message,
                retry_after_ms,
            } => {
                self.txn_open = txn_open;
                if code == ErrorCode::Busy {
                    Err(Error::ServerBusy { retry_after_ms })
                } else {
                    Err(Error::Remote {
                        code,
                        offset,
                        message,
                    })
                }
            }
        }
    }

    /// Run `query`, backing off and retrying on SERVER_BUSY responses.
    /// The wait honors the server's `retry_after_ms` hint when present
    /// (falling back to a doubling schedule from 10 ms) and gives up
    /// with the last busy error after `max_retries` sheds.
    pub fn query_with_backoff(&mut self, sql: &str, max_retries: u32) -> Result<Response> {
        let mut fallback_ms = 10u64;
        let mut attempt = 0;
        loop {
            match self.query(sql) {
                Err(Error::ServerBusy { retry_after_ms }) if attempt < max_retries => {
                    attempt += 1;
                    let wait = match retry_after_ms {
                        Some(ms) => u64::from(ms),
                        None => {
                            let w = fallback_ms;
                            fallback_ms = (fallback_ms * 2).min(1000);
                            w
                        }
                    };
                    std::thread::sleep(Duration::from_millis(wait));
                }
                other => return other,
            }
        }
    }

    /// Responses still owed by the server (sent-but-unreceived queries).
    pub fn pending(&self) -> usize {
        self.in_flight
    }

    fn send(&mut self, req: &Request) -> Result<()> {
        let (op, payload) = req.encode();
        proto::write_frame(&mut self.stream, op, &payload)?;
        self.in_flight += 1;
        Ok(())
    }

    fn round_trip_ts(&mut self, req: &Request) -> Result<Timestamp> {
        self.send(req)?;
        let resp = self.recv_response()?;
        resp.ts
            .ok_or_else(|| Error::Corruption("server reply missing timestamp".into()))
    }

    /// Switch this connection into a WAL subscription starting at
    /// `from_lsn` (byte offset into the primary's log). From here on the
    /// server pushes [`WalBatch`] frames; ordinary requests are no longer
    /// possible, so the `Client` is consumed.
    pub fn subscribe_wal(mut self, from_lsn: u64) -> Result<WalSubscription> {
        let (op, payload) = Request::SubscribeWal { from_lsn }.encode();
        proto::write_frame(&mut self.stream, op, &payload)?;
        Ok(WalSubscription {
            stream: self.stream,
        })
    }
}

/// The receiving end of a WAL subscription (see [`Client::subscribe_wal`]).
pub struct WalSubscription {
    stream: TcpStream,
}

impl WalSubscription {
    /// Block until the next pushed batch arrives (or the read timeout
    /// expires, surfacing the I/O error).
    pub fn next_batch(&mut self) -> Result<WalBatch> {
        let (op, payload) = proto::read_frame(&mut self.stream)?;
        WalBatch::decode(op, &payload)
    }

    /// Report how far this follower has applied (informational; the
    /// primary uses it for observability, not retention).
    pub fn ack(&mut self, applied_lsn: u64) -> Result<()> {
        let (op, payload) = Request::ReplAck { applied_lsn }.encode();
        proto::write_frame(&mut self.stream, op, &payload)?;
        Ok(())
    }

    /// Bound how long [`WalSubscription::next_batch`] blocks; reconnect
    /// loops use this to notice shutdown between batches.
    pub fn set_read_timeout(&self, d: Option<Duration>) -> Result<()> {
        self.stream.set_read_timeout(d)?;
        Ok(())
    }
}
