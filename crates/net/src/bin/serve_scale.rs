//! `serve-scale` — the CI connection-scaling stage, in one process.
//!
//! Opens a fresh store, starts the reactor-model server on a small fixed
//! worker-core pool, then connects 500 clients (override with
//! `SCALE_CONNS`) of which ≥90% sit idle while the rest drive a mixed
//! load (autocommit writes, explicit transactions, snapshot reads, AS OF
//! reads). The isolation sentinel is armed for the whole run.
//!
//! The run FAILS if:
//! * any connection is shed or errors (the cap is set above the fleet),
//! * any parked connection stops answering when poked at the end,
//! * the process thread count ever implies thread-per-connection
//!   (threads must stay far below the connection count),
//! * resident memory exceeds a hard bound,
//! * the sentinel confirms a single isolation violation, or saw nothing.

use std::process::ExitCode;
use std::sync::Arc;
use std::thread;
use std::time::{SystemTime, UNIX_EPOCH};

use immortaldb::{Database, DbConfig, Durability, EventTap, Sentinel, Value};
use immortaldb_common::Error;
use immortaldb_net::{Client, Server, ServerConfig};

const WORKERS: usize = 4;
const ACTIVE: usize = 50;
const ROUNDS: i32 = 20;
const MAX_RSS_MIB: u64 = 768;
const MAX_THREADS: u64 = 96;

fn main() -> ExitCode {
    match run() {
        Ok(()) => {
            println!("serve-scale: PASS");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve-scale: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Read a numeric field (kB for VmRSS) from /proc/self/status.
fn proc_status(field: &str) -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let rest = rest.trim_start_matches(':').trim();
            return rest.split_whitespace().next()?.parse().ok();
        }
    }
    None
}

fn run() -> immortaldb_common::Result<()> {
    let conns: usize = std::env::var("SCALE_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500);
    let dir = std::env::var("SCALE_DIR")
        .map(Into::into)
        .unwrap_or_else(|_| {
            std::env::temp_dir().join(format!("immortal-serve-scale-{}", std::process::id()))
        });
    let _ = std::fs::remove_dir_all(&dir);

    let tap = EventTap::new(1 << 18);
    let db = Arc::new(Database::open(
        DbConfig::new(&dir)
            .durability(Durability::Fsync)
            .sentinel(Arc::clone(&tap)),
    )?);
    let sentinel = Sentinel::spawn(Arc::clone(&tap), db.metrics().clone());
    let server = Server::start(
        Arc::clone(&db),
        ServerConfig::new("127.0.0.1:0")
            .workers(WORKERS)
            .max_connections(conns * 2),
    )?;
    let addr = server.local_addr();
    println!("serve-scale: serving on {addr} ({WORKERS} worker cores)");

    let mut admin = Client::connect(addr)?;
    admin.query("CREATE IMMORTAL TABLE scale (id INT PRIMARY KEY, worker INT, v BIGINT)")?;

    // The idle fleet: connect, handshake, park. Under a
    // thread-per-connection server this alone would need `conns`
    // threads; the reactor must hold them all on its fixed budget.
    let mut idle = Vec::with_capacity(conns - ACTIVE);
    for _ in 0..conns.saturating_sub(ACTIVE) {
        idle.push(Client::connect(addr)?);
    }
    let open = db.metrics().server.open_connections.get();
    if (open as usize) < conns - ACTIVE {
        return Err(Error::Internal(format!(
            "expected ≥{} open connections, server sees {open}",
            conns - ACTIVE
        )));
    }
    let threads = proc_status("Threads").unwrap_or(0);
    println!("serve-scale: {open} connections open, {threads} process threads");
    if threads > MAX_THREADS {
        return Err(Error::Internal(format!(
            "{threads} threads for {open} connections — that is thread-per-conn scaling \
             (bound: {MAX_THREADS})"
        )));
    }

    // Mixed load from the active minority while the fleet idles.
    let handles: Vec<_> = (0..ACTIVE)
        .map(|w| {
            thread::spawn(move || -> immortaldb_common::Result<()> {
                let mut c = Client::connect(addr)?;
                for i in 0..ROUNDS {
                    let id = (w as i32) * 1000 + i;
                    c.query_with_backoff(&format!("INSERT INTO scale VALUES ({id}, {w}, 0)"), 32)?;
                    // Explicit transaction with a snapshot read inside.
                    loop {
                        if c.in_transaction() {
                            c.rollback()?;
                        }
                        c.query("BEGIN TRAN ISOLATION SNAPSHOT")?;
                        let r = (|| {
                            c.query(&format!("SELECT v FROM scale WHERE id = {id}"))?;
                            c.query(&format!(
                                "UPDATE scale SET v = {} WHERE id = {id}",
                                i as i64 + 1
                            ))?;
                            c.commit()
                        })();
                        match r {
                            Ok(_) => break,
                            Err(e) if e.is_transient() => continue,
                            Err(Error::ServerBusy { .. }) => continue,
                            Err(e) => return Err(e),
                        }
                    }
                    // Occasional historical read at "now".
                    if i % 7 == 0 {
                        let ms = SystemTime::now()
                            .duration_since(UNIX_EPOCH)
                            .unwrap()
                            .as_millis() as u64;
                        c.begin_as_of_ms(ms)?;
                        c.query(&format!("SELECT v FROM scale WHERE id = {id}"))?;
                        c.commit()?;
                    }
                }
                Ok(())
            })
        })
        .collect();
    for h in handles {
        h.join().expect("load thread panicked")?;
    }

    let rss_kib = proc_status("VmRSS").unwrap_or(0);
    let threads = proc_status("Threads").unwrap_or(0);
    println!(
        "serve-scale: after load: RSS {} MiB, {} threads, shed {} conns / {} reqs",
        rss_kib / 1024,
        threads,
        db.metrics().server.shed_connections.get(),
        db.metrics().server.shed_requests.get(),
    );
    if rss_kib / 1024 > MAX_RSS_MIB {
        return Err(Error::Internal(format!(
            "RSS {} MiB exceeds the {MAX_RSS_MIB} MiB bound",
            rss_kib / 1024
        )));
    }
    if threads > MAX_THREADS {
        return Err(Error::Internal(format!(
            "{threads} threads after load (bound: {MAX_THREADS})"
        )));
    }

    // Every parked connection must still answer.
    for (i, c) in idle.iter_mut().enumerate() {
        let r = c.query("SELECT id FROM scale WHERE id = 0")?;
        if r.rows.is_empty() {
            return Err(Error::Internal(format!(
                "idle connection {i} got an empty answer for a committed row"
            )));
        }
    }

    let expect = (ACTIVE as i64) * (ROUNDS as i64);
    let count = admin.query("SELECT id FROM scale")?;
    if count.rows.len() as i64 != expect {
        return Err(Error::Internal(format!(
            "expected {expect} rows, found {}",
            count.rows.len()
        )));
    }
    // Sanity: row w*1000+i was inserted at 0 then updated once to i+1.
    let vals = admin.query("SELECT id, v FROM scale")?;
    for r in &vals.rows {
        let (Value::Int(id), Value::BigInt(v)) = (&r[0], &r[1]) else {
            return Err(Error::Internal(format!("unexpected row shape {r:?}")));
        };
        let want = (*id as i64 % 1000) + 1;
        if *v != want {
            return Err(Error::Internal(format!(
                "row {id}: expected v = {want}, found {v} — an update was lost"
            )));
        }
    }

    let report = sentinel.stop();
    println!(
        "serve-scale: sentinel checked {} events ({} reads, {} commits, {} unverifiable, {} dropped)",
        report.events,
        report.reads_checked,
        report.commits_checked,
        report.unverifiable,
        report.dropped,
    );
    if report.violation_count != 0 {
        return Err(Error::Internal(format!(
            "sentinel confirmed {} isolation violations: {:?}",
            report.violation_count, report.violations
        )));
    }
    if report.events == 0 || report.reads_checked == 0 {
        return Err(Error::Internal(
            "sentinel was armed but checked nothing".into(),
        ));
    }

    drop(idle);
    drop(admin);
    server.shutdown()?;
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
