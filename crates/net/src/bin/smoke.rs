//! `net-smoke` — the CI "serve" stage, in one process.
//!
//! Opens a fresh store, starts the wire server on an ephemeral port,
//! drives a mixed workload from several concurrent `net::Client`s
//! (autocommit writes, explicit transactions, AS OF reads, a parse error
//! checking the byte offset), shuts the server down gracefully, then
//! reopens the store and verifies the shutdown was clean: recovery must
//! replay nothing (`recovery.crash_recoveries` stays 0) and the data must
//! survive.
//!
//! The isolation sentinel is armed for the whole run: every commit and
//! every snapshot/AS OF read streams through the event tap, and the run
//! FAILS if the checker confirms a single snapshot-isolation violation.
//! Exits non-zero on any failure.

use std::process::ExitCode;
use std::sync::Arc;
use std::thread;

use immortaldb::{Database, DbConfig, Durability, EventTap, Sentinel, Session, Value};
use immortaldb_common::Error;
use immortaldb_net::{Client, Server, ServerConfig};

const CLIENTS: usize = 4;
const ROWS_PER_CLIENT: i32 = 25;

fn main() -> ExitCode {
    match run() {
        Ok(()) => {
            println!("net-smoke: PASS");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("net-smoke: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}

fn retry<T>(mut f: impl FnMut() -> immortaldb_common::Result<T>) -> immortaldb_common::Result<T> {
    loop {
        match f() {
            Err(e) if e.is_transient() => continue,
            other => return other,
        }
    }
}

fn run() -> immortaldb_common::Result<()> {
    let dir = std::env::var("SMOKE_DIR")
        .map(Into::into)
        .unwrap_or_else(|_| {
            std::env::temp_dir().join(format!("immortal-net-smoke-{}", std::process::id()))
        });
    let _ = std::fs::remove_dir_all(&dir);

    let tap = EventTap::new(1 << 16);
    let db = Arc::new(Database::open(
        DbConfig::new(&dir)
            .durability(Durability::Fsync)
            .sentinel(Arc::clone(&tap)),
    )?);
    let sentinel = Sentinel::spawn(Arc::clone(&tap), db.metrics().clone());
    let server = Server::start(
        Arc::clone(&db),
        ServerConfig::new("127.0.0.1:0").workers(CLIENTS),
    )?;
    let addr = server.local_addr();
    println!("net-smoke: serving on {addr}");

    let mut admin = Client::connect(addr)?;
    admin.query("CREATE IMMORTAL TABLE smoke (id INT PRIMARY KEY, worker INT, v VARCHAR(32))")?;

    // A parse error must come back typed, with the byte offset.
    match admin.query("SELECT * FORM smoke") {
        Err(Error::Remote {
            offset: Some(9), ..
        }) => {}
        other => {
            return Err(Error::Internal(format!(
                "expected parse error at byte 9 over the wire, got {other:?}"
            )))
        }
    }

    let handles: Vec<_> = (0..CLIENTS)
        .map(|w| {
            thread::spawn(move || -> immortaldb_common::Result<()> {
                let mut c = Client::connect(addr)?;
                for i in 0..ROWS_PER_CLIENT {
                    let id = w as i32 * 1000 + i;
                    // Autocommit write.
                    retry(|| c.query(&format!("INSERT INTO smoke VALUES ({id}, {w}, 'v0')")))?;
                    // Explicit transaction: update then commit.
                    let commit_ts = retry(|| {
                        if c.in_transaction() {
                            c.rollback()?;
                        }
                        c.query("BEGIN TRAN")?;
                        c.query(&format!("UPDATE smoke SET v = 'v1' WHERE id = {id}"))?;
                        c.commit()
                    })?;
                    // AS OF read at the commit timestamp sees the update.
                    // The engine clamps AS OF to the commit-visibility
                    // horizon (snapshots never straddle an in-flight
                    // group commit); the BEGIN_AS_OF reply carries the
                    // effective timestamp, so wait the horizon out.
                    if i % 5 == 0 {
                        let rows = loop {
                            let eff = c.begin_as_of_ts(commit_ts)?;
                            if eff < commit_ts {
                                c.commit()?;
                                thread::sleep(std::time::Duration::from_millis(5));
                                continue;
                            }
                            let rows = c.query(&format!("SELECT v FROM smoke WHERE id = {id}"))?;
                            c.commit()?;
                            break rows;
                        };
                        if rows.rows != vec![vec![Value::Varchar("v1".into())]] {
                            return Err(Error::Internal(format!(
                                "AS OF read at {commit_ts:?} saw {:?}",
                                rows.rows
                            )));
                        }
                    }
                }
                Ok(())
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread panicked")?;
    }

    // Group commit must have engaged across connections, observable over
    // the wire via SHOW STATS.
    let stats = admin.query("SHOW STATS")?;
    let metric = |name: &str| -> i64 {
        stats
            .rows
            .iter()
            .find(|r| r[0] == Value::Varchar(name.into()))
            .map(|r| match r[1] {
                Value::BigInt(v) => v,
                _ => 0,
            })
            .unwrap_or(0)
    };
    let expect_rows = (CLIENTS as i64) * (ROWS_PER_CLIENT as i64);
    println!(
        "net-smoke: {} requests, {} group commits, {} fsyncs",
        metric("server.requests"),
        metric("wal.group_commits"),
        metric("wal.fsyncs"),
    );

    let count = admin.query("SELECT id FROM smoke")?;
    if count.rows.len() as i64 != expect_rows {
        return Err(Error::Internal(format!(
            "expected {expect_rows} rows before shutdown, found {}",
            count.rows.len()
        )));
    }

    // The sentinel watched the whole run: it must have processed events
    // and confirmed no isolation violation.
    let report = sentinel.stop();
    println!(
        "net-smoke: sentinel checked {} events ({} reads, {} commits, {} unverifiable, {} dropped)",
        report.events,
        report.reads_checked,
        report.commits_checked,
        report.unverifiable,
        report.dropped,
    );
    if report.violation_count != 0 {
        return Err(Error::Internal(format!(
            "sentinel confirmed {} isolation violations: {:?}",
            report.violation_count, report.violations
        )));
    }
    if report.events == 0 {
        return Err(Error::Internal(
            "sentinel was armed but saw no events".into(),
        ));
    }

    drop(admin);
    server.shutdown()?;

    // Clean-shutdown check: reopening must not be a crash recovery, and
    // the data must still be there.
    let db = Database::open(DbConfig::new(&dir).durability(Durability::Fsync))?;
    let crash = db.metrics_snapshot().get("recovery.crash_recoveries");
    if crash != Some(0) {
        return Err(Error::Internal(format!(
            "graceful shutdown was not clean: crash_recoveries = {crash:?}"
        )));
    }
    let mut session = Session::new(&db);
    let rows = session.execute("SELECT id, v FROM smoke")?;
    if rows.rows.len() as i64 != expect_rows {
        return Err(Error::Internal(format!(
            "expected {expect_rows} rows after reopen, found {}",
            rows.rows.len()
        )));
    }
    if rows
        .rows
        .iter()
        .any(|r| r[1] != Value::Varchar("v1".into()))
    {
        return Err(Error::Internal("a committed update was lost".into()));
    }
    db.close()?;
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
