//! Minimal readiness-polling layer for the reactor: raw `epoll` on
//! Linux, POSIX `poll` elsewhere on unix. Declared directly against the
//! system C library — no external crate — because the reactor needs
//! exactly four calls and nothing else.
//!
//! The [`Poller`] is level-triggered everywhere: an event keeps firing
//! while the condition holds, so the reactor may stop reading a socket
//! mid-burst (fairness, backpressure) and pick the rest up on the next
//! wait. Only the reactor thread touches a `Poller`; cross-thread
//! wake-ups go through the [`Waker`] pipe it has registered.

use std::io;
use std::os::unix::io::RawFd;
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// What a registration wants to be told about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Registered but silent (a connection parked while a worker owns it).
    None,
    Read,
    Write,
    Both,
}

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// Peer hangup or socket error: the connection is done regardless of
    /// buffered data.
    pub closed: bool,
}

#[cfg(target_os = "linux")]
mod imp {
    use super::*;
    use std::os::raw::c_int;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0o2000000;

    /// Mirrors glibc's `struct epoll_event`, which is packed on x86_64
    /// (a 12-byte struct) and naturally aligned elsewhere.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn mask(interest: Interest) -> u32 {
        let m = match interest {
            Interest::None => 0,
            Interest::Read => EPOLLIN,
            Interest::Write => EPOLLOUT,
            Interest::Both => EPOLLIN | EPOLLOUT,
        };
        // RDHUP lets a half-closed peer surface as `closed` instead of a
        // read returning 0 much later.
        m | EPOLLRDHUP
    }

    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            let arg = if op == EPOLL_CTL_DEL {
                std::ptr::null_mut()
            } else {
                &mut ev as *mut EpollEvent
            };
            if unsafe { epoll_ctl(self.epfd, op, fd, arg) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::None)
        }

        /// Wait for readiness, up to `timeout` (`None` = forever).
        /// Clears and refills `out`.
        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            out.clear();
            let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
            let ms: c_int = match timeout {
                None => -1,
                // Round up so a 0 < t < 1ms deadline never busy-spins.
                Some(t) => {
                    t.as_millis().min(i32::MAX as u128) as c_int
                        + if t.subsec_nanos() % 1_000_000 != 0 {
                            1
                        } else {
                            0
                        }
                }
            };
            let n = unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as c_int, ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for ev in buf.iter().take(n as usize) {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: bits & EPOLLIN != 0,
                    writable: bits & EPOLLOUT != 0,
                    closed: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::*;
    use std::collections::HashMap;
    use std::os::raw::{c_int, c_short};
    use std::sync::Mutex;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    #[cfg(target_os = "macos")]
    type Nfds = std::os::raw::c_uint;
    #[cfg(not(target_os = "macos"))]
    type Nfds = std::os::raw::c_ulong;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: Nfds, timeout: c_int) -> c_int;
    }

    /// `poll(2)` fallback: the interest table lives here instead of in
    /// the kernel, rebuilt into a `pollfd` array per wait. O(n) per call
    /// but portable; the Linux build never uses it.
    pub struct Poller {
        regs: Mutex<HashMap<RawFd, (u64, Interest)>>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                regs: Mutex::new(HashMap::new()),
            })
        }

        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.regs.lock().unwrap().insert(fd, (token, interest));
            Ok(())
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.regs.lock().unwrap().insert(fd, (token, interest));
            Ok(())
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.regs.lock().unwrap().remove(&fd);
            Ok(())
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            out.clear();
            let snapshot: Vec<(RawFd, u64, Interest)> = self
                .regs
                .lock()
                .unwrap()
                .iter()
                .map(|(fd, (t, i))| (*fd, *t, *i))
                .collect();
            let mut fds: Vec<PollFd> = snapshot
                .iter()
                .map(|(fd, _, i)| PollFd {
                    fd: *fd,
                    events: match i {
                        Interest::None => 0,
                        Interest::Read => POLLIN,
                        Interest::Write => POLLOUT,
                        Interest::Both => POLLIN | POLLOUT,
                    },
                    revents: 0,
                })
                .collect();
            let ms: c_int = match timeout {
                None => -1,
                Some(t) => t.as_millis().min(i32::MAX as u128) as c_int + 1,
            };
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as Nfds, ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for (pf, (_, token, _)) in fds.iter().zip(snapshot.iter()) {
                if pf.revents != 0 {
                    out.push(Event {
                        token: *token,
                        readable: pf.revents & POLLIN != 0,
                        writable: pf.revents & POLLOUT != 0,
                        closed: pf.revents & (POLLERR | POLLHUP) != 0,
                    });
                }
            }
            Ok(())
        }
    }
}

pub use imp::Poller;

/// Cross-thread wake-up for a [`Poller`]: a socketpair whose read end is
/// registered like any connection. `wake` writes one byte; the reactor
/// drains on readability. Writes into a full pipe are dropped — a wake
/// is already pending, which is all a wake means.
pub struct Waker {
    tx: UnixStream,
    rx: UnixStream,
}

impl Waker {
    pub fn new() -> io::Result<Waker> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Waker { tx, rx })
    }

    /// Fd to register with the poller (read interest).
    pub fn fd(&self) -> RawFd {
        use std::os::unix::io::AsRawFd;
        self.rx.as_raw_fd()
    }

    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1u8]);
    }

    /// Consume pending wake bytes (reactor side, on readability).
    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn poller_sees_readable_socketpair() {
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        let p = Poller::new().unwrap();
        p.add(b.as_raw_fd(), 7, Interest::Read).unwrap();

        let mut events = Vec::new();
        // Nothing yet: times out empty.
        p.wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != 7 || !e.readable));

        (&a).write_all(b"x").unwrap();
        p.wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        // Level-triggered: still readable until drained.
        p.wait(&mut events, Some(Duration::from_millis(100)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        let mut buf = [0u8; 8];
        let _ = (&b).read(&mut buf);

        // Parked interest goes silent.
        p.modify(b.as_raw_fd(), 7, Interest::None).unwrap();
        (&a).write_all(b"y").unwrap();
        p.wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(!events.iter().any(|e| e.token == 7 && e.readable));

        // Re-armed interest sees the buffered byte again.
        p.modify(b.as_raw_fd(), 7, Interest::Read).unwrap();
        p.wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        p.delete(b.as_raw_fd()).unwrap();
    }

    #[test]
    fn waker_round_trip() {
        let p = Poller::new().unwrap();
        let w = Waker::new().unwrap();
        p.add(w.fd(), 0, Interest::Read).unwrap();
        let mut events = Vec::new();
        w.wake();
        w.wake(); // coalesces
        p.wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 0 && e.readable));
        w.drain();
        p.wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(!events.iter().any(|e| e.token == 0 && e.readable));
    }

    #[test]
    fn hangup_is_reported_closed() {
        let (a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let p = Poller::new().unwrap();
        p.add(b.as_raw_fd(), 3, Interest::Read).unwrap();
        drop(a);
        let mut events = Vec::new();
        p.wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.closed));
    }
}
