//! TCP server front door with two serving models behind one config:
//!
//! * [`ServerModel::Reactor`] (default) — a readiness-based event loop
//!   ([`crate::reactor`]): one reactor thread multiplexes every
//!   connection over epoll/poll and a fixed worker-core pool executes
//!   only connections with a complete request buffered. Idle
//!   connections cost no thread, so thousands of mostly-idle sessions
//!   run on a fixed thread budget. Admission control is two-level
//!   (`max_connections` at accept, `max_inflight` per request) and shed
//!   replies carry a `retry_after_ms` hint.
//! * [`ServerModel::ThreadPerConn`] — the original design, kept as the
//!   comparison baseline for `immortaldb-bench connections`: one
//!   acceptor pushes connections into a bounded queue and `workers`
//!   threads serve one connection each, shedding when the pool and
//!   queue are both full.
//!
//! Both models share the request execution path ([`handle_request`]),
//! the WAL-subscription shipper ([`ship_wal`]) and the framing layer,
//! so wire behavior is identical; they differ only in how sockets are
//! waited on. In both, pipelined requests (many frames in one burst)
//! are served back-to-back, which is what lets group commit batch log
//! forces across connections.
//!
//! Shutdown is graceful in both models: accepting stops, buffered
//! requests drain (in-flight commits finish), abandoned transactions
//! are rolled back, and finally [`Database::close`] forces the WAL so a
//! subsequent open replays nothing.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use immortaldb::{Database, Session};
use immortaldb_common::{Error, Lsn, Result};

use crate::proto::{self, FrameBuffer, Reply, Request, WalBatch, VERSION};

/// Upper bound on the WAL bytes in one replication batch. Record
/// boundaries are respected, so a single oversized record still ships
/// alone.
const SHIP_BATCH_BYTES: usize = 256 * 1024;

/// How the server waits on its connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerModel {
    /// Readiness-based reactor (default): one event-loop thread plus
    /// `workers` execution cores; idle connections cost no thread.
    Reactor,
    /// One worker thread per concurrently-served connection (the
    /// original model; kept as the scaling-comparison baseline).
    ThreadPerConn,
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Connection-waiting strategy (see [`ServerModel`]).
    pub model: ServerModel,
    /// Fixed number of worker threads. Under [`ServerModel::Reactor`]
    /// this is the execution-core count (connections can far exceed
    /// it); under [`ServerModel::ThreadPerConn`] it is also the max
    /// number of concurrently served connections.
    pub workers: usize,
    /// ThreadPerConn only: connections allowed to wait for a worker
    /// before new ones are shed with SERVER_BUSY.
    pub accept_queue: usize,
    /// Reactor only: open-connection cap; accepts beyond it are shed
    /// with one SERVER_BUSY frame (`server.shed_connections`).
    pub max_connections: usize,
    /// Reactor only: dispatched-connection cap; buffered requests
    /// beyond it are answered SERVER_BUSY without being decoded
    /// (`server.shed_requests`). `0` = auto (`workers * 16`).
    pub max_inflight: usize,
    /// Back-off hint carried in SERVER_BUSY replies (`retry_after_ms`).
    pub shed_retry_ms: u32,
    /// Sessions idle longer than this are rolled back and disconnected.
    pub idle_timeout: Duration,
    /// Poll granularity for shutdown/idle checks between frames.
    pub tick: Duration,
}

impl ServerConfig {
    pub fn new(addr: impl Into<String>) -> ServerConfig {
        ServerConfig {
            addr: addr.into(),
            model: ServerModel::Reactor,
            workers: 8,
            accept_queue: 16,
            max_connections: 4096,
            max_inflight: 0,
            shed_retry_ms: 25,
            idle_timeout: Duration::from_secs(300),
            tick: Duration::from_millis(25),
        }
    }

    pub fn model(mut self, m: ServerModel) -> Self {
        self.model = m;
        self
    }

    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    pub fn accept_queue(mut self, n: usize) -> Self {
        self.accept_queue = n;
        self
    }

    pub fn max_connections(mut self, n: usize) -> Self {
        self.max_connections = n.max(1);
        self
    }

    pub fn max_inflight(mut self, n: usize) -> Self {
        self.max_inflight = n;
        self
    }

    pub fn shed_retry_ms(mut self, ms: u32) -> Self {
        self.shed_retry_ms = ms;
        self
    }

    pub fn idle_timeout(mut self, d: Duration) -> Self {
        self.idle_timeout = d;
        self
    }

    pub fn tick(mut self, d: Duration) -> Self {
        self.tick = d.max(Duration::from_millis(1));
        self
    }
}

/// State shared by the acceptor and the workers.
struct Shared {
    db: Arc<Database>,
    cfg: ServerConfig,
    queue: Mutex<VecDeque<TcpStream>>,
    queued: Condvar,
    active: AtomicUsize,
    shutdown: AtomicBool,
}

impl Shared {
    fn set_active(&self, delta: isize) {
        let prev = if delta > 0 {
            self.active.fetch_add(delta as usize, Ordering::Relaxed) + delta as usize
        } else {
            self.active.fetch_sub((-delta) as usize, Ordering::Relaxed) - (-delta) as usize
        };
        self.db.metrics().server.active_sessions.set(prev as u64);
    }
}

/// A running wire-protocol server (either [`ServerModel`]). Dropping it
/// without calling [`Server::shutdown`] aborts the threads
/// non-gracefully (the test harness should always shut down).
pub struct Server {
    local_addr: SocketAddr,
    inner: Inner,
}

enum Inner {
    Threaded {
        shared: Arc<Shared>,
        acceptor: Option<JoinHandle<()>>,
        workers: Vec<JoinHandle<()>>,
    },
    #[cfg(unix)]
    Reactor(crate::reactor::ReactorServer),
}

impl Server {
    /// Bind `cfg.addr` and start serving under the configured model.
    /// (On non-unix targets `ServerModel::Reactor` falls back to the
    /// thread-per-connection model.)
    pub fn start(db: Arc<Database>, cfg: ServerConfig) -> Result<Server> {
        #[cfg(unix)]
        if cfg.model == ServerModel::Reactor {
            let r = crate::reactor::ReactorServer::start(db, cfg)?;
            return Ok(Server {
                local_addr: r.local_addr(),
                inner: Inner::Reactor(r),
            });
        }
        Server::start_threaded(db, cfg)
    }

    fn start_threaded(db: Arc<Database>, cfg: ServerConfig) -> Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            db,
            cfg,
            queue: Mutex::new(VecDeque::new()),
            queued: Condvar::new(),
            active: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });

        let mut workers = Vec::with_capacity(shared.cfg.workers);
        for i in 0..shared.cfg.workers {
            let sh = Arc::clone(&shared);
            workers.push(
                thread::Builder::new()
                    .name(format!("imdb-worker-{i}"))
                    .spawn(move || worker_loop(&sh))
                    .map_err(Error::Io)?,
            );
        }
        let sh = Arc::clone(&shared);
        let acceptor = thread::Builder::new()
            .name("imdb-acceptor".into())
            .spawn(move || accept_loop(&sh, listener))
            .map_err(Error::Io)?;

        Ok(Server {
            local_addr,
            inner: Inner::Threaded {
                shared,
                acceptor: Some(acceptor),
                workers,
            },
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Graceful shutdown: stop accepting, let workers drain the requests
    /// already buffered on their connections (rolling back abandoned
    /// transactions), then close the database — the final WAL force. The
    /// store is cleanly recoverable afterwards: reopening it replays no
    /// log and does not count as a crash recovery.
    pub fn shutdown(self) -> Result<()> {
        match self.inner {
            Inner::Threaded {
                shared,
                mut acceptor,
                mut workers,
            } => {
                shared.shutdown.store(true, Ordering::SeqCst);
                // Wake the acceptor out of `accept()` with a throwaway
                // connection.
                let _ = TcpStream::connect(self.local_addr);
                if let Some(a) = acceptor.take() {
                    let _ = a.join();
                }
                shared.queued.notify_all();
                for w in workers.drain(..) {
                    let _ = w.join();
                }
                shared.db.close()
            }
            #[cfg(unix)]
            Inner::Reactor(r) => r.shutdown(),
        }
    }
}

fn accept_loop(sh: &Shared, listener: TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if sh.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if sh.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let m = &sh.db.metrics().server;
        m.connections_accepted.inc();
        let mut q = sh.queue.lock().unwrap();
        let busy = sh.active.load(Ordering::Relaxed) >= sh.cfg.workers;
        if busy && q.len() >= sh.cfg.accept_queue {
            drop(q);
            m.connections_rejected.inc();
            m.shed_connections.inc();
            shed(stream, Some(sh.cfg.shed_retry_ms));
            continue;
        }
        q.push_back(stream);
        drop(q);
        sh.queued.notify_one();
    }
}

/// Tell an overflowing connection to go away, politely and in one frame
/// carrying the back-off hint.
pub(crate) fn shed(stream: TcpStream, retry_after_ms: Option<u32>) {
    let reply = Reply::Error {
        txn_open: false,
        code: immortaldb_common::ErrorCode::Busy,
        offset: None,
        message: Error::ServerBusy { retry_after_ms }.to_string(),
        retry_after_ms,
    };
    let (op, payload) = reply.encode();
    let _ = proto::write_frame(&mut &stream, op, &payload);
    // Dropping the stream closes it.
}

fn worker_loop(sh: &Shared) {
    loop {
        let stream = {
            let mut q = sh.queue.lock().unwrap();
            loop {
                if sh.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                match q.pop_front() {
                    Some(s) => break s,
                    None => q = sh.queued.wait(q).unwrap(),
                }
            }
        };
        sh.set_active(1);
        serve_connection(sh, stream);
        sh.set_active(-1);
        sh.db.metrics().server.connections_closed.inc();
    }
}

/// Serve one connection until disconnect, idle timeout, protocol error
/// or shutdown.
fn serve_connection(sh: &Shared, stream: TcpStream) {
    let m = &sh.db.metrics().server;
    // Replies must not sit in Nagle's buffer waiting for ACKs: pipelined
    // clients have several requests outstanding, and a delayed reply
    // stalls their whole window.
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(sh.cfg.tick)).is_err() {
        return;
    }
    let mut session = Session::new(sh.db.as_ref());
    let mut frames = FrameBuffer::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut reader = &stream;
    let mut greeted = false;
    let mut last_activity = Instant::now();

    'conn: loop {
        // Drain every complete frame already buffered before touching the
        // socket again: this is the pipelining path.
        loop {
            let (opcode, payload) = match frames.next_frame() {
                Ok(Some(f)) => f,
                Ok(None) => break,
                Err(_) => break 'conn, // hostile framing: hang up
            };
            m.requests.inc();
            let timer = m.request_ns.start_timer();
            let reply = match Request::decode(opcode, &payload) {
                Ok(Request::Hello { version }) if !greeted => {
                    if version == VERSION {
                        greeted = true;
                        Reply::Ok {
                            txn_open: false,
                            ts: None,
                            affected: 0,
                            message: format!("immortaldb protocol {VERSION}"),
                        }
                    } else {
                        let e = Error::Sql(format!(
                            "protocol version mismatch: client {version}, server {VERSION}"
                        ));
                        let r = Reply::from_error(&e, false);
                        m.errors.inc();
                        send(&stream, &r);
                        break 'conn;
                    }
                }
                Ok(Request::SubscribeWal { from_lsn }) => {
                    if !greeted {
                        m.errors.inc();
                        send(
                            &stream,
                            &Reply::from_error(&Error::Sql("expected HELLO first".into()), false),
                        );
                        break 'conn;
                    }
                    // The connection becomes a one-way push stream (it
                    // keeps this worker until the subscriber goes away).
                    ship_wal(sh.db.as_ref(), &sh.shutdown, &stream, from_lsn);
                    break 'conn;
                }
                Ok(req) => {
                    if !greeted {
                        m.errors.inc();
                        send(
                            &stream,
                            &Reply::from_error(&Error::Sql("expected HELLO first".into()), false),
                        );
                        break 'conn;
                    }
                    handle_request(sh.db.as_ref(), &mut session, req)
                }
                Err(e) => {
                    // Undecodable payload: answer, then hang up — the
                    // stream state is untrustworthy.
                    m.errors.inc();
                    send(&stream, &Reply::from_error(&e, session.in_transaction()));
                    break 'conn;
                }
            };
            timer.stop();
            if matches!(reply, Reply::Error { .. }) {
                m.errors.inc();
            }
            if !send(&stream, &reply) {
                break 'conn;
            }
        }

        if sh.shutdown.load(Ordering::SeqCst) {
            break; // buffered requests were drained above
        }

        match reader.read(&mut chunk) {
            Ok(0) => break, // client disconnected
            Ok(n) => {
                frames.extend(&chunk[..n]);
                last_activity = Instant::now();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if last_activity.elapsed() >= sh.cfg.idle_timeout {
                    if session.in_transaction() {
                        m.idle_rollbacks.inc();
                    }
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    // Whatever path got us here: abandon the session so its locks and
    // uncommitted versions disappear.
    session.reset();
}

/// Stream WAL batches to a subscribed replica until it disconnects or
/// the server shuts down.
///
/// Ordering is the whole correctness story: the visibility horizon is
/// sampled *before* the log bytes. Commit records land in the log before
/// `CommitHorizon::retire` makes their timestamp visible, so every
/// commit at or below a horizon sampled first is already inside the
/// bytes read afterwards — the follower may safely serve `AS OF ts` for
/// any `ts ≤` that horizon once the batch is applied. An empty batch is
/// still sent when only the horizon moved (the idle-primary heartbeat).
///
/// Shared by both serving models: the thread-per-connection worker calls
/// it in place, the reactor hands the socket to a dedicated shipper
/// thread first.
pub(crate) fn ship_wal(db: &Database, shutdown: &AtomicBool, stream: &TcpStream, from_lsn: u64) {
    let m = &db.metrics().repl;
    let mut from = from_lsn;
    let mut last_horizon = None;
    // An empty batch is the explicit "caught up" signal (bootstrap stops
    // on it); send exactly one per catch-up, then only when the horizon
    // moves again.
    let mut caught_up_signalled = false;
    let mut acks = FrameBuffer::new();
    let mut chunk = [0u8; 4 * 1024];
    let mut reader = stream;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let horizon = db.visible_horizon();
        let (bytes, next) = match db.wal().read_raw(Lsn(from), SHIP_BATCH_BYTES) {
            Ok(r) => r,
            Err(_) => return,
        };
        let send_now = if bytes.is_empty() {
            let due = last_horizon != Some(horizon) || !caught_up_signalled;
            caught_up_signalled = true;
            due
        } else {
            caught_up_signalled = false;
            true
        };
        if send_now {
            let batch = WalBatch {
                start_lsn: from,
                horizon,
                bytes,
            };
            let (op, payload) = batch.encode();
            if proto::write_frame(&mut &*stream, op, &payload).is_err() {
                return;
            }
            m.batches_shipped.inc();
            m.bytes_shipped.add(payload.len() as u64);
            last_horizon = Some(horizon);
            from = next.0;
        }
        // One tick on the socket: pick up acks, notice disconnects, and
        // pace the catch-up loop when there is nothing new to ship.
        match reader.read(&mut chunk) {
            Ok(0) => return, // subscriber went away
            Ok(n) => {
                acks.extend(&chunk[..n]);
                loop {
                    match acks.next_frame() {
                        Ok(Some((opcode, payload))) => {
                            // Acks are informational; anything else on a
                            // subscribed connection is a protocol error.
                            if Request::decode(opcode, &payload)
                                .map(|r| !matches!(r, Request::ReplAck { .. }))
                                .unwrap_or(true)
                            {
                                return;
                            }
                        }
                        Ok(None) => break,
                        Err(_) => return,
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn send(stream: &TcpStream, reply: &Reply) -> bool {
    let (op, payload) = reply.encode();
    proto::write_frame(&mut &*stream, op, &payload).is_ok()
}

/// Execute one request against the connection's session (shared by both
/// serving models).
pub(crate) fn handle_request(db: &Database, session: &mut Session<'_>, req: Request) -> Reply {
    let m = &db.metrics().server;
    let result: Result<Reply> = (|| match req {
        Request::Hello { .. } => Err(Error::Sql("unexpected HELLO".into())),
        Request::Query(sql) => {
            let is_commit = session.in_transaction()
                && sql
                    .trim_start()
                    .get(..6)
                    .is_some_and(|p| p.eq_ignore_ascii_case("COMMIT"));
            let timer = is_commit.then(|| m.commit_ns.start_timer());
            let res = session.execute(&sql);
            drop(timer);
            let res = res?;
            let txn_open = session.in_transaction();
            if res.columns.is_empty() {
                Ok(Reply::Ok {
                    txn_open,
                    ts: None,
                    affected: res.affected as u64,
                    message: res.message,
                })
            } else {
                Ok(Reply::Rows {
                    txn_open,
                    columns: res.columns,
                    rows: res.rows,
                    message: res.message,
                })
            }
        }
        Request::Begin(iso) => {
            let snapshot = session.begin(iso)?;
            Ok(Reply::Ok {
                txn_open: true,
                ts: Some(snapshot),
                affected: 0,
                message: "transaction started".into(),
            })
        }
        Request::BeginAsOf(target) => {
            let effective = match target {
                proto::AsOfTarget::ClockMs(ms) => session.begin_as_of_ms(ms)?,
                proto::AsOfTarget::Exact(ts) => session.begin_as_of_ts(ts)?,
            };
            Ok(Reply::Ok {
                txn_open: true,
                ts: Some(effective),
                affected: 0,
                message: "historical transaction started".into(),
            })
        }
        Request::Commit => {
            let timer = m.commit_ns.start_timer();
            let ts = session.commit();
            drop(timer);
            let ts = ts?;
            Ok(Reply::Ok {
                txn_open: false,
                ts: Some(ts),
                affected: 0,
                message: format!("committed at {}.{}", ts.ttime, ts.sn),
            })
        }
        Request::Rollback => {
            session.rollback()?;
            Ok(Reply::Ok {
                txn_open: false,
                ts: None,
                affected: 0,
                message: "rolled back".into(),
            })
        }
        // Subscriptions are intercepted in `serve_connection` (they take
        // over the whole connection); an ack outside one is a protocol
        // error.
        Request::SubscribeWal { .. } | Request::ReplAck { .. } => Err(Error::Sql(
            "replication frame outside a WAL subscription".into(),
        )),
    })();
    match result {
        Ok(reply) => reply,
        Err(e) => Reply::from_error(&e, session.in_transaction()),
    }
}
