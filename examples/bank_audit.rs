//! Data auditing — the paper's §1.1 banking scenario.
//!
//! "For auditing purposes, a bank finds it useful to keep previous states
//! of the database to check that account balances are correct and to
//! provide customers with a detailed history of their account."
//!
//! An IMMORTAL accounts table records every balance change forever; the
//! auditor replays end-of-"day" snapshots with AS OF queries and verifies
//! conservation of money across transfers — including one the teller
//! rolled back, which correctly leaves no trace.
//!
//! ```text
//! cargo run --example bank_audit
//! ```

use immortaldb::{Database, DbConfig, Session, Value};

fn balance_at(db: &Database, ts: immortaldb::Timestamp) -> immortaldb::Result<i64> {
    let mut txn = db.begin_as_of_ts(ts);
    let rows = db.scan_rows(&mut txn, "accounts")?;
    db.commit(&mut txn)?;
    Ok(rows.iter().map(|r| r[1].as_i64().unwrap()).sum())
}

fn main() -> immortaldb::Result<()> {
    let dir = std::env::temp_dir().join(format!("immortal-bank-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Database::open(DbConfig::new(&dir))?;
    let mut s = Session::new(&db);

    s.execute(
        "CREATE IMMORTAL TABLE accounts (id INT PRIMARY KEY, balance BIGINT, owner VARCHAR(32))",
    )?;
    s.execute(
        "INSERT INTO accounts VALUES (1, 1000, 'alice'), (2, 500, 'bob'), (3, 250, 'carol')",
    )?;
    let day0 = db.latest_ts();
    println!("day 0: opened 3 accounts, total = 1750");

    // Day 1: alice pays bob 300 — atomically.
    s.execute("BEGIN TRAN")?;
    s.execute("UPDATE accounts SET balance = 700 WHERE id = 1")?;
    s.execute("UPDATE accounts SET balance = 800 WHERE id = 2")?;
    s.execute("COMMIT TRAN")?;
    let day1 = db.latest_ts();
    println!("day 1: alice -> bob 300");

    // Day 2: a mistaken transfer, rolled back before commit. Because the
    // transaction never committed, it must be invisible to every audit.
    s.execute("BEGIN TRAN")?;
    s.execute("UPDATE accounts SET balance = 0 WHERE id = 3")?;
    s.execute("ROLLBACK TRAN")?;
    // ...and the real day-2 business: carol deposits 50.
    s.execute("UPDATE accounts SET balance = 300 WHERE id = 3")?;
    let day2 = db.latest_ts();
    println!("day 2: bad transfer rolled back; carol deposited 50");

    // The audit: total balances at each end-of-day snapshot.
    println!("\naudit (AS OF each day-end):");
    for (day, ts, expect) in [(0u32, day0, 1750i64), (1, day1, 1750), (2, day2, 1800)] {
        let total = balance_at(&db, ts)?;
        println!("  day {day}: total = {total}");
        assert_eq!(total, expect, "day {day} audit");
    }

    // Per-account statement for alice, from the version history.
    println!("\nstatement for account 1 (alice), oldest first:");
    let mut history = db.history_rows("accounts", &Value::Int(1))?;
    history.reverse();
    for (ts, row) in &history {
        let at = ts.map(|t| t.ttime).unwrap_or(0);
        match row {
            Some(r) => println!("  @{at}: balance {}", r[1]),
            None => println!("  @{at}: account closed"),
        }
    }
    assert_eq!(
        history.len(),
        2,
        "open + one transfer; the rollback left no trace"
    );

    db.close()?;
    let _ = std::fs::remove_dir_all(&dir);
    println!("\nok");
    Ok(())
}
