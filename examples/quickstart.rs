//! Quickstart: the paper's SQL surface end to end.
//!
//! Creates the `MovingObjects` table from §4.1, runs inserts/updates, and
//! issues the §4.2 AS OF query — showing that the past states of an
//! IMMORTAL table remain queryable forever.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use immortaldb::{Database, DbConfig, Session};

fn main() -> immortaldb::Result<()> {
    let dir = std::env::temp_dir().join(format!("immortal-quickstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Database::open(DbConfig::new(&dir))?;
    let mut session = Session::new(&db);

    // §4.1: "Create IMMORTAL Table" — the keyword makes versions
    // persistent and enables AS OF queries.
    session.execute(
        "Create IMMORTAL Table MovingObjects \
         (Oid smallint PRIMARY KEY, LocationX int, LocationY int) ON [PRIMARY]",
    )?;
    println!("created IMMORTAL table MovingObjects");

    // A few objects appear on the map.
    session
        .execute("INSERT INTO MovingObjects VALUES (1, 100, 200), (2, 300, 400), (3, 500, 600)")?;
    println!("inserted 3 objects");

    // Remember "now" so we can time-travel back to it later. (The engine
    // timestamps with 20 ms resolution plus a sequence number; sleeping
    // one tick keeps this demonstration unambiguous.)
    let t_past = db.now_ms();
    std::thread::sleep(std::time::Duration::from_millis(25));

    // The objects move; every update creates a new version, the old one
    // is never destroyed.
    session.execute("UPDATE MovingObjects SET LocationX = 111, LocationY = 222 WHERE Oid = 1")?;
    session.execute("UPDATE MovingObjects SET LocationX = 333 WHERE Oid = 2")?;
    session.execute("DELETE FROM MovingObjects WHERE Oid = 3")?;
    println!("moved objects 1 and 2, deleted object 3");

    // Current state.
    let now = session.execute("SELECT * FROM MovingObjects WHERE Oid < 10")?;
    println!("\ncurrent state ({} rows):", now.rows.len());
    for row in &now.rows {
        println!("  Oid={} x={} y={}", row[0], row[1], row[2]);
    }

    // §4.2: the AS OF query — exactly the paper's transaction shape.
    session.execute(&format!("Begin Tran AS OF ms({t_past})"))?;
    let past = session.execute("SELECT * FROM MovingObjects WHERE Oid < 10")?;
    session.execute("Commit Tran")?;
    println!("\nAS OF the remembered instant ({} rows):", past.rows.len());
    for row in &past.rows {
        println!("  Oid={} x={} y={}", row[0], row[1], row[2]);
    }
    assert_eq!(
        past.rows.len(),
        3,
        "the deleted object is still there in the past"
    );
    assert_eq!(past.rows[0][1].to_string(), "100");

    // Per-record time travel.
    let hist = session.execute("HISTORY OF MovingObjects WHERE Oid = 1")?;
    println!("\nversion history of object 1 (newest first):");
    for row in &hist.rows {
        println!(
            "  commit_ms={} sn={} op={} -> x={} y={}",
            row[0], row[1], row[2], row[4], row[5]
        );
    }

    // What the engine did under the hood, from the obs registry. The same
    // data is reachable through SQL as `SHOW STATS`.
    println!("\nengine metrics at exit:");
    print!("{}", db.metrics_snapshot().to_text());

    db.close()?;
    let _ = std::fs::remove_dir_all(&dir);
    println!("\nok");
    Ok(())
}
