//! Moving objects on a road network — the paper's §5 scenario.
//!
//! Drives the Brinkhoff-style network generator against an IMMORTAL
//! table: objects appear (insert transactions) and report positions as
//! they move (update transactions). Afterwards we reconstruct complete
//! trajectories with AS OF queries and per-record time travel — the
//! "tracing the trajectory of moving objects" application from §1.1.
//!
//! ```text
//! cargo run --release --example moving_objects
//! ```

use immortaldb::{Database, DbConfig, Isolation, Session, Value};
use immortaldb_mobgen::{Generator, Op};

fn main() -> immortaldb::Result<()> {
    let dir = std::env::temp_dir().join(format!("immortal-mobjs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Database::open(DbConfig::new(&dir))?;
    let mut session = Session::new(&db);
    session.execute(
        "CREATE IMMORTAL TABLE MovingObjects \
         (Oid INT PRIMARY KEY, LocationX INT, LocationY INT)",
    )?;

    // 50 vehicles, each reporting 40 position updates.
    let events = Generator::events_exact(2026, 50, 40);
    println!(
        "applying {} transactions from the generator...",
        events.len()
    );
    let mut mid_run = None;
    for (i, e) in events.iter().enumerate() {
        let mut txn = db.begin(Isolation::Serializable);
        match e.op {
            Op::Insert { oid, x, y } => db.insert_row(
                &mut txn,
                "MovingObjects",
                vec![Value::Int(oid as i32), Value::Int(x), Value::Int(y)],
            )?,
            Op::Update { oid, x, y } => db.update_row(
                &mut txn,
                "MovingObjects",
                vec![Value::Int(oid as i32), Value::Int(x), Value::Int(y)],
            )?,
        }
        db.commit(&mut txn)?;
        if i == events.len() / 2 {
            mid_run = Some(db.latest_ts());
        }
    }
    let mid_run = mid_run.expect("events applied");

    // Where was the whole fleet halfway through?
    let mut txn = db.begin_as_of_ts(mid_run);
    let rows = db.scan_rows(&mut txn, "MovingObjects")?;
    db.commit(&mut txn)?;
    println!(
        "fleet snapshot halfway through the run: {} vehicles",
        rows.len()
    );
    for row in rows.iter().take(5) {
        println!("  vehicle {} was at ({}, {})", row[0], row[1], row[2]);
    }

    // Full trajectory of vehicle 7, reconstructed from its versions.
    let trajectory = db.history_rows("MovingObjects", &Value::Int(7))?;
    println!(
        "\ntrajectory of vehicle 7: {} recorded positions (newest first)",
        trajectory.len()
    );
    for (ts, row) in trajectory.iter().take(8) {
        let at = ts.map(|t| t.ttime).unwrap_or(0);
        match row {
            Some(r) => println!("  @{at}: ({}, {})", r[1], r[2]),
            None => println!("  @{at}: <deleted>"),
        }
    }
    assert_eq!(trajectory.len(), 41, "insert + 40 updates");

    // The same question in SQL.
    let res = session.execute("HISTORY OF MovingObjects WHERE Oid = 7")?;
    assert_eq!(res.rows.len(), 41);

    let (time_splits, key_splits) = db.split_counts();
    println!("\nstorage: {time_splits} time splits, {key_splits} key splits");
    println!("persistent timestamp table entries: {}", db.ptt_len()?);
    db.close()?;
    let _ = std::fs::remove_dir_all(&dir);
    println!("ok");
    Ok(())
}
