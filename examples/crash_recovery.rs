//! Crash recovery: losers roll back, history survives.
//!
//! Phase 1 commits some history, leaves a transaction in flight, forces
//! its log records to disk and then "crashes" (drops the engine without a
//! checkpoint, abandoning every cached page). Phase 2 reopens the
//! database: ARIES analysis/redo/undo replays the committed work and rolls
//! the loser back — and thanks to unlogged lazy timestamping, versions
//! whose stamps were lost simply revert to TID-marked and get re-stamped
//! from the persistent timestamp table on the next access (§2.2).
//!
//! ```text
//! cargo run --example crash_recovery
//! ```

use immortaldb::{Database, DbConfig, Isolation, Session, Value};

fn main() -> immortaldb::Result<()> {
    let dir = std::env::temp_dir().join(format!("immortal-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let t_past;
    {
        // Phase 1: normal operation...
        let db = Database::open(DbConfig::new(&dir))?;
        let mut s = Session::new(&db);
        s.execute(
            "CREATE IMMORTAL TABLE ledger (id INT PRIMARY KEY, amount BIGINT, memo VARCHAR(40))",
        )?;
        s.execute("INSERT INTO ledger VALUES (1, 100, 'opening'), (2, 200, 'opening')")?;
        t_past = db.now_ms();
        std::thread::sleep(std::time::Duration::from_millis(25));
        s.execute("UPDATE ledger SET amount = 150, memo = 'adjusted' WHERE id = 1")?;
        println!("phase 1: committed an insert wave and an update");

        // ...then a transaction that will never commit.
        let mut doomed = db.begin(Isolation::Serializable);
        db.update_row(
            &mut doomed,
            "ledger",
            vec![
                Value::Int(2),
                Value::BigInt(999_999),
                Value::Varchar("fraud?".into()),
            ],
        )?;
        db.insert_row(
            &mut doomed,
            "ledger",
            vec![
                Value::Int(3),
                Value::BigInt(7),
                Value::Varchar("phantom".into()),
            ],
        )?;
        db.force_log()?; // its log records are durable...
        std::mem::forget(doomed); // ...but the transaction never commits:
        println!("phase 1: in-flight transaction written to the log; CRASH");
        // Dropping `db` here abandons all cached pages — the data file may
        // hold any prefix of the recent work. Only the log is trustworthy.
    }

    // Phase 2: restart.
    let db = Database::open(DbConfig::new(&dir))?;
    println!(
        "phase 2: recovery complete — {} loser transaction(s) rolled back",
        db.recovered_losers
    );
    assert_eq!(db.recovered_losers, 1);

    let mut s = Session::new(&db);
    let rows = s.execute("SELECT * FROM ledger")?;
    println!("current ledger ({} rows):", rows.rows.len());
    for row in &rows.rows {
        println!("  id={} amount={} memo={}", row[0], row[1], row[2]);
    }
    assert_eq!(rows.rows.len(), 2, "the phantom insert is gone");
    assert_eq!(
        rows.rows[1][1],
        Value::BigInt(200),
        "the fraud update is undone"
    );

    // Committed history survived the crash, still AS OF-queryable.
    s.execute(&format!("BEGIN TRAN AS OF ms({t_past})"))?;
    let past = s.execute("SELECT amount FROM ledger WHERE id = 1")?;
    s.execute("COMMIT TRAN")?;
    assert_eq!(past.rows[0][0], Value::BigInt(100));
    println!(
        "AS OF before the crash: account 1 had amount {}",
        past.rows[0][0]
    );

    db.close()?;
    let _ = std::fs::remove_dir_all(&dir);
    println!("ok");
    Ok(())
}
